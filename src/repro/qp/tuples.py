"""Self-describing tuples (paper Section 3.3.1) over interned schemas.

PIER keeps no system catalog, so every tuple carries its own table name,
column names, and values.  Column values are native Python objects (the
paper used native Java objects); type checking is deferred to the moment a
comparison or function accesses the value, and tuples that do not match a
query's expectations are discarded best-effort (Section 3.3.4, "Malformed
Tuples").

Self-description is a *logical* property, not a storage layout: tuples of
the same shape share one interned :class:`Schema` (table name, column
order, and an O(1) column->index map), and a :class:`Tuple` is just a
schema reference plus a value tuple.  The tuple itself is the wire object
— senders ship it as-is and receivers use it as-is (``to_wire`` /
``from_wire``), with the legacy ``{"table": ..., "values": {...}}`` dict
form still accepted on receive.  Tuples are immutable once created, which
is what lets the simulator memoize their wire size (see
:mod:`repro.runtime.sizing`) and pass them between virtual nodes without
dict round-trips.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple as PyTuple

from repro.runtime.sizing import MAX_DEPTH, deep_size


class MalformedTupleError(Exception):
    """Raised internally when a tuple lacks a field or has an unusable type.

    Operators catch this and silently drop the tuple ("best effort").
    """


class Schema:
    """An interned (table, columns) descriptor shared by same-shape tuples.

    Interning makes the per-tuple cost of self-description one pointer:
    the column list, the column->position map, and the fixed portion of
    the wire-size estimate are computed once per distinct shape and shared
    by every tuple of that shape.  Use :meth:`intern`; constructing
    ``Schema`` directly creates an un-shared instance.
    """

    __slots__ = ("table", "columns", "index", "_wire_overhead", "_packed_header")

    _interned: Dict[PyTuple[str, PyTuple[str, ...]], "Schema"] = {}

    def __init__(self, table: str, columns: PyTuple[str, ...]) -> None:
        self.table = table
        self.columns = columns
        self.index: Dict[str, int] = {
            column: position for position, column in enumerate(columns)
        }
        self._wire_overhead: Optional[int] = None
        self._packed_header: Optional[bytes] = None

    @classmethod
    def intern(cls, table: str, columns: Iterable[str]) -> "Schema":
        key = (table, tuple(columns))
        schema = cls._interned.get(key)
        if schema is None:
            schema = cls._interned.setdefault(key, cls(key[0], key[1]))
        return schema

    @property
    def wire_overhead(self) -> int:
        """Bytes of the legacy dict wire form not attributable to values.

        Matches the structural estimate of ``{"table": t, "values": {...}}``
        minus the per-tuple column values, so interned wire tuples are
        accounted byte-for-byte like their old dict form.
        """
        overhead = self._wire_overhead
        if overhead is None:
            overhead = (
                91
                + len(self.table)
                + sum(16 + len(column) for column in self.columns)
            )
            self._wire_overhead = overhead
        return overhead

    @property
    def packed_header(self) -> bytes:
        """Cached binary header (table + column names) for the wire codec.

        Computed once per interned schema; every tuple of this shape
        reuses it, so the per-tuple encoding cost is just the values.
        """
        header = self._packed_header
        if header is None:
            from repro.runtime import codec

            header = codec.pack_schema(self)
            self._packed_header = header
        return header

    def __reduce__(self):  # legacy pickle fallback (codec is the wire format)
        return (Schema.intern, (self.table, self.columns))

    def __repr__(self) -> str:
        return f"Schema({self.table}: {', '.join(self.columns)})"


def _restore_tuple(table: str, columns: PyTuple[str, ...], values: PyTuple[Any, ...]) -> "Tuple":
    """Unpickle hook: re-intern the schema in the receiving process."""
    return Tuple._from_parts(Schema.intern(table, columns), values)


class Tuple:
    """An immutable, self-describing relational tuple: schema + values."""

    __slots__ = ("schema", "_values", "_wire_size", "_hash", "_encoded")

    def __init__(self, table: str, values: Mapping[str, Any]) -> None:
        self.schema = Schema.intern(table, values.keys())
        self._values: PyTuple[Any, ...] = tuple(values.values())
        self._wire_size: Optional[PyTuple[int, int]] = None  # (depth, size)
        self._hash: Optional[int] = None
        self._encoded: Optional[bytes] = None

    @classmethod
    def _from_parts(cls, schema: Schema, values: PyTuple[Any, ...]) -> "Tuple":
        """Internal fast constructor: no dict round-trip, no re-intern."""
        tup = object.__new__(cls)
        tup.schema = schema
        tup._values = values
        tup._wire_size = None
        tup._hash = None
        tup._encoded = None
        return tup

    # -- construction ------------------------------------------------------ #
    @staticmethod
    def make(table: str, **values: Any) -> "Tuple":
        return Tuple(table, values)

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "Tuple":
        """Rebuild a tuple from the legacy dict wire form (see :meth:`to_dict`)."""
        if not isinstance(payload, Mapping) or "table" not in payload or "values" not in payload:
            raise MalformedTupleError(f"not a tuple payload: {payload!r}")
        return Tuple(str(payload["table"]), dict(payload["values"]))

    @staticmethod
    def from_wire(payload: Any) -> "Tuple":
        """Accept a wire payload: an interned tuple passes through as-is
        (zero-copy — tuples are immutable), the legacy
        ``{"table", "values"}`` dict form is rebuilt."""
        if isinstance(payload, Tuple):
            return payload
        if isinstance(payload, Mapping):
            return Tuple.from_dict(payload)
        raise MalformedTupleError(f"not a tuple payload: {payload!r}")

    def to_wire(self) -> "Tuple":
        """Wire representation: the tuple itself (schema reference + values)."""
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The legacy self-describing dict form (kept for compatibility)."""
        return {"table": self.table, "values": dict(zip(self.schema.columns, self._values))}

    # -- access -------------------------------------------------------------- #
    @property
    def table(self) -> str:
        return self.schema.table

    @property
    def columns(self) -> PyTuple[str, ...]:
        return self.schema.columns

    def __contains__(self, column: str) -> bool:
        return column in self.schema.index

    def __getitem__(self, column: str) -> Any:
        try:
            return self._values[self.schema.index[column]]
        except KeyError as exc:
            raise MalformedTupleError(
                f"tuple of table {self.table!r} has no column {column!r}"
            ) from exc

    def get(self, column: str, default: Any = None) -> Any:
        position = self.schema.index.get(column)
        if position is None:
            return default
        return self._values[position]

    def require(self, column: str, expected_type: Optional[type] = None) -> Any:
        """Strict access used by operators: missing column or wrong type means
        the tuple is malformed for this query and must be dropped."""
        value = self[column]
        if expected_type is not None and not isinstance(value, expected_type):
            raise MalformedTupleError(
                f"column {column!r} of table {self.table!r} is "
                f"{type(value).__name__}, expected {expected_type.__name__}"
            )
        return value

    def values(self) -> PyTuple[Any, ...]:
        return self._values

    def as_mapping(self) -> Dict[str, Any]:
        return dict(zip(self.schema.columns, self._values))

    # -- derivation ------------------------------------------------------------ #
    def project(self, columns: Iterable[str], table: Optional[str] = None) -> "Tuple":
        """A new tuple with only ``columns`` (missing columns are malformed)."""
        index = self.schema.index
        kept: List[str] = []
        positions: List[int] = []
        for column in columns:
            position = index.get(column)
            if position is None:
                raise MalformedTupleError(
                    f"tuple of table {self.table!r} has no column {column!r}"
                )
            if column not in kept:
                kept.append(column)
                positions.append(position)
        schema = Schema.intern(table or self.table, tuple(kept))
        return Tuple._from_parts(
            schema, tuple(self._values[position] for position in positions)
        )

    def extend(self, table: Optional[str] = None, **extra: Any) -> "Tuple":
        values = self.as_mapping()
        values.update(extra)
        return Tuple(table or self.table, values)

    def rename(self, table: str) -> "Tuple":
        return Tuple._from_parts(Schema.intern(table, self.schema.columns), self._values)

    def join(self, other: "Tuple", table: Optional[str] = None) -> "Tuple":
        """Concatenate two tuples; colliding columns are prefixed with the
        source table name, which keeps both values visible."""
        columns: List[str] = list(self.schema.columns)
        values: List[Any] = list(self._values)
        position: Dict[str, int] = dict(self.schema.index)
        for column, value in zip(other.schema.columns, other._values):
            at = position.get(column)
            if at is not None and values[at] != value:
                column = f"{other.table}.{column}"
                at = position.get(column)
            if at is not None:
                values[at] = value
            else:
                position[column] = len(columns)
                columns.append(column)
                values.append(value)
        schema = Schema.intern(table or f"{self.table}*{other.table}", tuple(columns))
        return Tuple._from_parts(schema, tuple(values))

    # -- identity ---------------------------------------------------------------- #
    def key(self, columns: Iterable[str]) -> PyTuple[Any, ...]:
        """A hashable key built from the named columns (for joins/group-by)."""
        index = self.schema.index
        values = self._values
        try:
            if columns.__class__ is list and len(columns) == 1:
                return (values[index[columns[0]]],)
            return tuple(values[index[column]] for column in columns)
        except KeyError as exc:
            raise MalformedTupleError(
                f"tuple of table {self.table!r} has no column {exc.args[0]!r}"
            ) from exc

    # -- binary wire form --------------------------------------------------- #
    def to_bytes(self) -> bytes:
        """The codec's binary encoding of this tuple, memoized.

        The schema header (table + columns) comes from the interned
        schema's cached blob; only the values are packed per tuple.
        Tuples are immutable once created, so the encoding is computed
        at most once no matter how many messages carry the tuple.
        """
        encoded = self._encoded
        if encoded is None:
            from repro.runtime import codec

            parts: List[bytes] = [
                bytes((codec.TAG_WIRE_TUPLE,)),
                self.schema.packed_header,
            ]
            for value in self._values:
                codec._encode_value(value, parts)
            encoded = b"".join(parts)
            self._encoded = encoded
        return encoded

    @staticmethod
    def from_bytes(data: bytes) -> "Tuple":
        """Decode a tuple produced by :meth:`to_bytes`, re-interning the
        schema in the receiving process."""
        from repro.runtime import codec

        value = codec.decode(data)
        if not isinstance(value, Tuple):
            raise MalformedTupleError(f"not an encoded tuple: {value!r}")
        return value

    # -- accounting ---------------------------------------------------------------- #
    def wire_size(self, depth: int = 1) -> int:
        """Memoized structural size of this tuple on the wire.

        ``depth`` is the nesting level the tuple's legacy dict form would
        occupy in the enclosing message (1 for a single ``put``'s value,
        3 for a ``put_batch`` entry), so the result is byte-for-byte what
        walking that dict form at the same depth would charge — including
        the recursion cutoff for deeply nested column values.  Tuples are
        immutable, so the size for a given depth is computed once; a tuple
        normally travels one kind of message, so a single-entry cache
        suffices.
        """
        if depth > MAX_DEPTH:
            return 8
        cached = self._wire_size
        if cached is not None and cached[0] == depth:
            return cached[1]
        child_depth = depth + 1
        if child_depth > MAX_DEPTH:
            # The "table"/"values" strings and the values dict all sit past
            # the cutoff: 8 flat bytes each.
            size = 16 + 8 * 4
        else:
            value_depth = child_depth + 1
            if value_depth > MAX_DEPTH:
                # Column names and values flatten to 8 bytes apiece inside
                # the values dict.
                size = 91 + len(self.table) + 16 * len(self._values)
            else:
                size = self.schema.wire_overhead + sum(
                    deep_size(value, value_depth) for value in self._values
                )
        self._wire_size = (depth, size)
        return size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        if self.schema is other.schema:
            return self._values == other._values
        return self.table == other.table and self.as_mapping() == other.as_mapping()

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = hash((self.table, self.schema.columns, _hashable(self._values)))
            self._hash = value
        return value

    def __reduce__(self):  # pickled by the physical runtime's wire format
        return (_restore_tuple, (self.table, self.schema.columns, self._values))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{c}={v!r}" for c, v in zip(self.schema.columns, self._values)
        )
        return f"Tuple({self.table}: {inner})"


def _hashable(values: PyTuple[Any, ...]) -> PyTuple[Any, ...]:
    converted: List[Any] = []
    for value in values:
        if isinstance(value, (list, set)):
            converted.append(tuple(value))
        elif isinstance(value, dict):
            converted.append(tuple(sorted(value.items())))
        else:
            converted.append(value)
    return tuple(converted)


def malformed_guard(function: Callable[..., Any]) -> Callable[..., Any]:
    """Decorator implementing the best-effort policy: if evaluating
    ``function`` raises a malformed-tuple or type error, the caller sees
    ``None`` and should drop the tuple."""

    def wrapper(*args: Any, **kwargs: Any) -> Any:
        try:
            return function(*args, **kwargs)
        except (MalformedTupleError, TypeError, KeyError, AttributeError):
            return None

    return wrapper
