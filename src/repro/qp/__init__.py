"""The PIER query processor (paper Section 3.3).

Data is represented as self-describing tuples; queries are UFL opgraphs —
dataflow graphs of physical operators — disseminated to the nodes that need
to run them, executed against the DHT, and streamed back to the client's
proxy node until the query's timeout expires.
"""

from repro.qp.tuples import Tuple, malformed_guard
from repro.qp.opgraph import OpGraph, OperatorSpec, QueryPlan
from repro.qp.executor import QueryExecutor
from repro.qp.proxy import ProxyService

__all__ = [
    "Tuple",
    "malformed_guard",
    "OpGraph",
    "OperatorSpec",
    "QueryPlan",
    "QueryExecutor",
    "ProxyService",
]
