"""UFL: the textual form of PIER's native query language (Section 3.3.2).

UFL queries are direct specifications of physical execution plans — "box
and arrow" dataflow graphs in the spirit of Aurora and the Click router.
This module provides the parser and serializer for a JSON-based UFL text
format, which is what travels between the Lighthouse-style front-end tools
and the proxy node.  A UFL document looks like::

    {
      "query_id": "q1",
      "timeout": 20.0,
      "opgraphs": [
        {
          "graph_id": "q1-g0",
          "dissemination": {"strategy": "broadcast"},
          "operators": [
            {"id": "scan", "type": "local_table", "params": {"table": "events"}},
            {"id": "results", "type": "result_handler", "inputs": ["scan"]}
          ]
        }
      ]
    }

UFL is a typed syntax in the paper; here, parameter types are validated
against each operator's declared schema at parse time — but, exactly as the
paper notes, column references cannot be checked because there is no
catalog.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from repro.qp.opgraph import OpGraph, QueryPlan
from repro.qp.operators.base import registered_operator_types


class UFLParseError(ValueError):
    """Raised when a UFL document cannot be parsed into a query plan."""


def parse_ufl(text: str) -> QueryPlan:
    """Parse a UFL document (JSON text) into a validated :class:`QueryPlan`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise UFLParseError(f"invalid UFL document: {exc}") from exc
    return plan_from_payload(payload)


def plan_from_payload(payload: Mapping[str, Any]) -> QueryPlan:
    """Build a plan from an already-decoded UFL payload."""
    if not isinstance(payload, Mapping):
        raise UFLParseError("UFL document must be a JSON object")
    if "opgraphs" not in payload or not payload["opgraphs"]:
        raise UFLParseError("UFL document must contain at least one opgraph")
    known_types = set(registered_operator_types())
    plan = QueryPlan(
        query_id=payload.get("query_id", QueryPlan().query_id),
        timeout=float(payload.get("timeout", 30.0)),
        metadata=dict(payload.get("metadata", {})),
    )
    for graph_payload in payload["opgraphs"]:
        graph = OpGraph.from_dict(_normalise_graph(graph_payload, plan.query_id))
        for spec in graph.operators.values():
            if spec.op_type not in known_types:
                raise UFLParseError(
                    f"opgraph {graph.graph_id!r} uses unknown operator type {spec.op_type!r}"
                )
        plan.add_graph(graph)
    try:
        plan.validate()
    except ValueError as exc:
        raise UFLParseError(str(exc)) from exc
    return plan


def _normalise_graph(graph_payload: Mapping[str, Any], query_id: str) -> Dict[str, Any]:
    if "operators" not in graph_payload:
        raise UFLParseError("opgraph missing 'operators'")
    payload = dict(graph_payload)
    payload.setdefault("graph_id", f"{query_id}-g{id(graph_payload) & 0xFFFF}")
    return payload


def to_ufl(plan: QueryPlan, indent: Optional[int] = 2) -> str:
    """Serialise a plan back to UFL text."""
    return json.dumps(plan.to_dict(), indent=indent, default=_json_default)


def _json_default(value: Any) -> Any:
    if isinstance(value, (set, frozenset, tuple)):
        return list(value)
    raise TypeError(f"cannot serialise {type(value).__name__} in UFL")
