"""Bandwidth-reducing join rewrites (paper Sections 2.1.1 and 3.3.4).

The symmetric-hash rehash join ships *every* tuple of both relations across
the network.  Two classic rewrites reduce that traffic:

* **Bloom join** — each site first publishes a Bloom filter of its local
  join keys; the other relation is rehashed only where the filter says a
  match is possible.
* **Semi-join** — a query explicitly joins a (key, tupleID) *secondary
  index* with the other relation first, and only the surviving tupleIDs are
  dereferenced with a Fetch Matches join.

Both rewrites are expressed purely as UFL plan shapes built from existing
operators, exactly as the paper describes ("common rewrite strategies such
as Bloom join and semi-joins can be constructed").
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.qp.opgraph import DisseminationSpec, QueryPlan
from repro.qp.plans import _key_expression


def bloom_join_plan(
    left_table: str,
    right_table: str,
    left_columns: List[str],
    right_columns: List[str],
    source: str = "dht_scan",
    timeout: float = 25.0,
    output_table: Optional[str] = None,
    rendezvous: str = "bloom_join_rehash",
    filter_namespace: str = "bloom_filters",
    size_bits: int = 8192,
) -> QueryPlan:
    """Bloom join: filter the right relation by the left relation's keys
    before rehashing, then symmetric-hash join the survivors."""
    plan = QueryPlan(timeout=timeout)
    scan_type = "local_table" if source == "local_table" else "dht_scan"

    def scan_params(table: str) -> dict:
        return {"table": table} if scan_type == "local_table" else {"namespace": table}

    # Opgraph 0: build and publish Bloom filters over the left relation.
    build = plan.new_graph(dissemination=DisseminationSpec(strategy="broadcast"))
    build.add_operator("scan_left", scan_type, scan_params(left_table))
    build.add_operator(
        "bloom",
        "bloom_build",
        {"columns": left_columns, "filter_namespace": filter_namespace, "size_bits": size_bits},
        inputs=["scan_left"],
    )

    # Opgraph 1: rehash the left relation (it always travels) and the
    # Bloom-filtered right relation into the rendezvous namespace.
    rehash = plan.new_graph(dissemination=DisseminationSpec(strategy="broadcast"))
    rehash.add_operator("scan_left", scan_type, scan_params(left_table))
    rehash.add_operator("scan_right", scan_type, scan_params(right_table))
    rehash.add_operator(
        "probe_right",
        "bloom_probe",
        {"columns": right_columns, "filter_namespace": filter_namespace},
        inputs=["scan_right"],
    )
    rehash.add_operator(
        "extend_left",
        "projection",
        {
            "keep_all": True,
            "computed": {
                "__join_key__": _key_expression(left_columns),
                "__source_table__": ["lit", left_table],
            },
        },
        inputs=["scan_left"],
    )
    rehash.add_operator(
        "extend_right",
        "projection",
        {
            "keep_all": True,
            "computed": {
                "__join_key__": _key_expression(right_columns),
                "__source_table__": ["lit", right_table],
            },
        },
        inputs=["probe_right"],
    )
    rehash.add_operator("union_both", "union", {}, inputs=["extend_left", "extend_right"])
    rehash.add_operator(
        "rehash",
        "put",
        {"namespace": rendezvous, "key_columns": ["__join_key__"]},
        inputs=["union_both"],
    )

    # Opgraph 2: join at the rendezvous partitions.
    join = plan.new_graph(dissemination=DisseminationSpec(strategy="broadcast"))
    join.add_operator("scan_rehash", "dht_scan", {"namespace": rendezvous, "scoped": True})
    join.add_operator(
        "split_left",
        "selection",
        {"predicate": ["eq", ["col", "__source_table__"], ["lit", left_table]]},
        inputs=["scan_rehash"],
    )
    join.add_operator(
        "split_right",
        "selection",
        {"predicate": ["eq", ["col", "__source_table__"], ["lit", right_table]]},
        inputs=["scan_rehash"],
    )
    join.add_operator(
        "join",
        "symmetric_hash_join",
        {
            "left_columns": ["__join_key__"],
            "right_columns": ["__join_key__"],
            "output_table": output_table,
        },
        inputs=["split_left", "split_right"],
    )
    join.add_operator("results", "result_handler", {"batch": 16}, inputs=["join"])
    return plan


def semi_join_plan(
    outer_table: str,
    index_namespace: str,
    inner_namespace: str,
    outer_columns: List[str],
    source: str = "dht_scan",
    outer_predicate: Optional[Any] = None,
    timeout: float = 25.0,
    output_table: Optional[str] = None,
) -> QueryPlan:
    """Semi-join through a secondary index (paper Section 3.3.3).

    The secondary index (``index_namespace``) maps index keys to the base
    table's partitioning keys.  The outer relation is first Fetch-Matches
    joined against the index (shipping only keys), and the surviving
    pointers are dereferenced against ``inner_namespace`` with a second
    Fetch Matches join — "a distributed index join over a secondary index".
    """
    plan = QueryPlan(timeout=timeout)
    graph = plan.new_graph(dissemination=DisseminationSpec(strategy="broadcast"))
    if source == "local_table":
        graph.add_operator("scan_outer", "local_table", {"table": outer_table})
    else:
        graph.add_operator("scan_outer", "dht_scan", {"namespace": outer_table})
    upstream = "scan_outer"
    if outer_predicate is not None:
        graph.add_operator(
            "select_outer", "selection", {"predicate": outer_predicate}, inputs=[upstream]
        )
        upstream = "select_outer"
    graph.add_operator(
        "index_probe",
        "fetch_matches_join",
        {"outer_columns": outer_columns, "inner_namespace": index_namespace},
        inputs=[upstream],
    )
    graph.add_operator(
        "dereference",
        "fetch_matches_join",
        {
            "outer_columns": ["base_key"],
            "inner_namespace": inner_namespace,
            "output_table": output_table,
        },
        inputs=["index_probe"],
    )
    graph.add_operator("results", "result_handler", {"batch": 16}, inputs=["dereference"])
    return plan
