"""Declarative predicates and scalar expressions for operator parameters.

Because opgraphs are shipped across the network, operator parameters must
be plain data.  Predicates are nested lists/tuples in prefix form, e.g.::

    ["and", ["eq", ["col", "proto"], ["lit", "tcp"]],
            [">",  ["col", "bytes"], ["lit", 1000]]]

Scalar expressions use the same representation (``col``, ``lit``,
arithmetic operators, string helpers).  Evaluation follows the paper's
best-effort rule: a reference to a missing column or a type mismatch makes
the tuple malformed for this query, and the caller drops it.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Union

from repro.qp.tuples import MalformedTupleError, Tuple

Expression = Union[list, tuple, Callable[[Tuple], Any], Any]


def evaluate(expression: Expression, tup: Tuple) -> Any:
    """Evaluate a scalar expression against one tuple."""
    if callable(expression):
        return expression(tup)
    if not isinstance(expression, (list, tuple)):
        # Bare literals are allowed as a convenience.
        return expression
    if not expression:
        raise MalformedTupleError("empty expression")
    head = expression[0]
    args = expression[1:]
    if head == "col":
        return tup.require(args[0])
    if head == "lit":
        return args[0]
    if head in _BINARY_ARITHMETIC:
        left, right = (evaluate(arg, tup) for arg in args)
        return _apply_arithmetic(head, left, right)
    if head == "concat":
        return "".join(str(evaluate(arg, tup)) for arg in args)
    if head == "lower":
        return str(evaluate(args[0], tup)).lower()
    if head == "upper":
        return str(evaluate(args[0], tup)).upper()
    if head == "len":
        return len(evaluate(args[0], tup))
    raise MalformedTupleError(f"unknown expression operator {head!r}")


def matches(predicate: Expression, tup: Tuple) -> bool:
    """Evaluate a boolean predicate against one tuple."""
    if predicate is None:
        return True
    if callable(predicate):
        return bool(predicate(tup))
    if not isinstance(predicate, (list, tuple)):
        return bool(predicate)
    if not predicate:
        return True
    head = predicate[0]
    args = predicate[1:]
    if head == "and":
        return all(matches(arg, tup) for arg in args)
    if head == "or":
        return any(matches(arg, tup) for arg in args)
    if head == "not":
        return not matches(args[0], tup)
    if head == "true":
        return True
    if head == "false":
        return False
    if head in _COMPARATORS:
        left = evaluate(args[0], tup)
        right = evaluate(args[1], tup)
        return _compare(head, left, right)
    if head == "contains":
        container = evaluate(args[0], tup)
        needle = evaluate(args[1], tup)
        return needle in container
    if head == "in":
        value = evaluate(args[0], tup)
        options = evaluate(args[1], tup)
        return value in options
    if head == "between":
        value = evaluate(args[0], tup)
        low = evaluate(args[1], tup)
        high = evaluate(args[2], tup)
        return low <= value <= high
    raise MalformedTupleError(f"unknown predicate operator {head!r}")


# -- helpers ------------------------------------------------------------------ #

_COMPARATORS = {"eq", "=", "ne", "!=", "lt", "<", "le", "<=", "gt", ">", "ge", ">="}
_BINARY_ARITHMETIC = {"+", "-", "*", "/", "%"}


def _compare(operator: str, left: Any, right: Any) -> bool:
    try:
        if operator in {"eq", "="}:
            return left == right
        if operator in {"ne", "!="}:
            return left != right
        if operator in {"lt", "<"}:
            return left < right
        if operator in {"le", "<="}:
            return left <= right
        if operator in {"gt", ">"}:
            return left > right
        if operator in {"ge", ">="}:
            return left >= right
    except TypeError as exc:
        raise MalformedTupleError(f"incomparable values {left!r} and {right!r}") from exc
    raise MalformedTupleError(f"unknown comparator {operator!r}")


def _apply_arithmetic(operator: str, left: Any, right: Any) -> Any:
    try:
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            return left / right
        if operator == "%":
            return left % right
    except (TypeError, ZeroDivisionError) as exc:
        raise MalformedTupleError(
            f"cannot apply {operator!r} to {left!r} and {right!r}"
        ) from exc
    raise MalformedTupleError(f"unknown arithmetic operator {operator!r}")


def column_references(expression: Expression) -> List[str]:
    """All column names referenced by an expression or predicate."""
    references: List[str] = []

    def walk(node: Expression) -> None:
        if not isinstance(node, (list, tuple)) or not node:
            return
        if node[0] == "col" and len(node) > 1 and isinstance(node[1], str):
            references.append(node[1])
            return
        for child in node[1:]:
            walk(child)

    walk(expression)
    return references
