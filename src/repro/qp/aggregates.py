"""Aggregate functions with mergeable partial state.

The paper distinguishes *distributive* and *algebraic* aggregates — which
need only constant state per group and therefore benefit from hierarchical
in-network computation — from *holistic* aggregates, which do not
(Section 3.3.4).  Every aggregate here exposes the same small interface:

* ``initial()``      -- the empty partial state,
* ``add(state, v)``  -- fold one input value into a partial state,
* ``merge(a, b)``    -- combine two partial states (used by hierarchy),
* ``result(state)``  -- produce the final answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple


class AggregateFunction:
    """Base class; ``distributive_or_algebraic`` governs hierarchical use."""

    name = "aggregate"
    distributive_or_algebraic = True

    def initial(self) -> Any:
        raise NotImplementedError

    def add(self, state: Any, value: Any) -> Any:
        raise NotImplementedError

    def merge(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def result(self, state: Any) -> Any:
        raise NotImplementedError


class Count(AggregateFunction):
    name = "count"

    def initial(self) -> int:
        return 0

    def add(self, state: int, value: Any) -> int:
        return state + 1

    def merge(self, left: int, right: int) -> int:
        return left + right

    def result(self, state: int) -> int:
        return state


class Sum(AggregateFunction):
    name = "sum"

    def initial(self) -> float:
        return 0

    def add(self, state: float, value: Any) -> float:
        return state + value

    def merge(self, left: float, right: float) -> float:
        return left + right

    def result(self, state: float) -> float:
        return state


class Min(AggregateFunction):
    name = "min"

    def initial(self) -> Optional[Any]:
        return None

    def add(self, state: Optional[Any], value: Any) -> Any:
        return value if state is None else min(state, value)

    def merge(self, left: Optional[Any], right: Optional[Any]) -> Optional[Any]:
        if left is None:
            return right
        if right is None:
            return left
        return min(left, right)

    def result(self, state: Optional[Any]) -> Optional[Any]:
        return state


class Max(AggregateFunction):
    name = "max"

    def initial(self) -> Optional[Any]:
        return None

    def add(self, state: Optional[Any], value: Any) -> Any:
        return value if state is None else max(state, value)

    def merge(self, left: Optional[Any], right: Optional[Any]) -> Optional[Any]:
        if left is None:
            return right
        if right is None:
            return left
        return max(left, right)

    def result(self, state: Optional[Any]) -> Optional[Any]:
        return state


class Average(AggregateFunction):
    """Algebraic: partial state is (sum, count)."""

    name = "avg"

    def initial(self) -> Tuple[float, int]:
        return (0.0, 0)

    def add(self, state: Tuple[float, int], value: Any) -> Tuple[float, int]:
        total, count = state
        return (total + value, count + 1)

    def merge(self, left: Tuple[float, int], right: Tuple[float, int]) -> Tuple[float, int]:
        return (left[0] + right[0], left[1] + right[1])

    def result(self, state: Tuple[float, int]) -> Optional[float]:
        total, count = state
        if count == 0:
            return None
        return total / count


class CountDistinct(AggregateFunction):
    """Holistic: the partial state is the full set of observed values, so it
    gains nothing from hierarchical computation (the paper's caveat)."""

    name = "count_distinct"
    distributive_or_algebraic = False

    def initial(self) -> set:
        return set()

    def add(self, state: set, value: Any) -> set:
        state = set(state)
        state.add(value)
        return state

    def merge(self, left: set, right: set) -> set:
        return set(left) | set(right)

    def result(self, state: set) -> int:
        return len(state)


class TopK(AggregateFunction):
    """Top-k heavy hitters by per-key count (the Figure 2 query).

    Partial state is a ``{key: count}`` mapping; partials from different
    nodes merge by summing counts, and the final result is the k keys with
    the largest totals.  Exact computation requires keeping all keys in the
    partial state; a ``capacity`` bound turns it into the usual lossy
    approximation used for in-network heavy-hitter queries.
    """

    name = "topk"

    def __init__(self, k: int = 10, capacity: Optional[int] = None) -> None:
        self.k = k
        self.capacity = capacity

    def initial(self) -> Dict[Any, int]:
        return {}

    def add(self, state: Dict[Any, int], value: Any) -> Dict[Any, int]:
        state = dict(state)
        state[value] = state.get(value, 0) + 1
        return self._truncate(state)

    def merge(self, left: Dict[Any, int], right: Dict[Any, int]) -> Dict[Any, int]:
        merged = dict(left)
        for key, count in right.items():
            merged[key] = merged.get(key, 0) + count
        return self._truncate(merged)

    def result(self, state: Dict[Any, int]) -> List[Tuple[Any, int]]:
        ranked = sorted(state.items(), key=lambda item: (-item[1], str(item[0])))
        return ranked[: self.k]

    def _truncate(self, state: Dict[Any, int]) -> Dict[Any, int]:
        if self.capacity is None or len(state) <= self.capacity:
            return state
        ranked = sorted(state.items(), key=lambda item: (-item[1], str(item[0])))
        return dict(ranked[: self.capacity])


_REGISTRY: Dict[str, Callable[..., AggregateFunction]] = {
    "count": Count,
    "sum": Sum,
    "min": Min,
    "max": Max,
    "avg": Average,
    "count_distinct": CountDistinct,
    "topk": TopK,
}


def make_aggregate(name: str, **params: Any) -> AggregateFunction:
    """Instantiate an aggregate function by name (used by plan specs)."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown aggregate function {name!r}") from exc
    return factory(**params)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column in a group-by: function, input column, output name."""

    function: str
    column: Optional[str]
    output: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def build(self) -> AggregateFunction:
        return make_aggregate(self.function, **dict(self.params))
