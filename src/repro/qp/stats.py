"""A lightweight statistics catalog for the cost-aware planner.

The paper's planner is "intentionally naive" because PIER has no catalog
to keep statistics in.  This module adds the minimum viable substitute: a
per-deployment :class:`Statistics` object that observes tuples as they are
published (``PIERNetwork.publish`` / ``register_local_table``) and keeps,
per table:

* an exact row count (``cardinality``),
* the set of column names seen so far, and
* a per-column distinct-value estimate from a KMV (k-minimum-values)
  sketch — constant space per column, no external dependencies.

The planner uses these to order multi-join plans (smallest estimated
inputs first), to choose between rehash, Fetch-Matches, and Bloom-join
strategies per join edge, and to decide when a WHERE predicate can be
pushed below a join.  Everything degrades gracefully: a table the catalog
has never seen simply reports ``None`` and the planner falls back to the
paper's naive behaviour.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional

_HASH_SPACE = float(2**64)


# Memo for the hot scalar classes.  Only exact ``int`` and ``str`` are
# cached: within those classes equal values always share one repr, so the
# cached digest is identical to a fresh computation (floats are excluded —
# -0.0 == 0.0 but their reprs differ — as are bools and arbitrary objects).
_hash64_cache: Dict[Any, int] = {}
_HASH64_CACHE_LIMIT = 1 << 16


def _hash64(value: Any) -> int:
    """A stable 64-bit hash of an arbitrary (repr-able) value."""
    cacheable = value.__class__ is int or value.__class__ is str
    if cacheable:
        cached = _hash64_cache.get(value)
        if cached is not None:
            return cached
    digest = hashlib.blake2b(repr(value).encode(), digest_size=8).digest()
    hashed = int.from_bytes(digest, "big")
    if cacheable and len(_hash64_cache) < _HASH64_CACHE_LIMIT:
        _hash64_cache[value] = hashed
    return hashed


class DistinctSketch:
    """KMV (k-minimum-values) distinct-count estimator.

    Keeps the ``k`` smallest 64-bit hashes seen; with fewer than ``k``
    distinct values the count is exact, beyond that the k-th minimum's
    position in the hash space estimates the total distinct count as
    ``(k - 1) / (kth_min / 2^64)``.
    """

    __slots__ = ("k", "_minima", "_members")

    def __init__(self, k: int = 256) -> None:
        if k < 2:
            raise ValueError("sketch size k must be at least 2")
        self.k = k
        self._minima: list = []  # sorted ascending, at most k entries
        self._members: set = set()

    def add(self, value: Any) -> None:
        hashed = _hash64(value)
        if hashed in self._members:
            return
        if len(self._minima) < self.k:
            self._members.add(hashed)
            bisect.insort(self._minima, hashed)
            return
        if hashed < self._minima[-1]:
            self._members.discard(self._minima.pop())
            self._members.add(hashed)
            bisect.insort(self._minima, hashed)

    def estimate(self) -> int:
        if len(self._minima) < self.k:
            return len(self._minima)
        return max(self.k, int((self.k - 1) / (self._minima[-1] / _HASH_SPACE)))

    def __len__(self) -> int:
        return len(self._minima)


@dataclass
class TableStatistics:
    """Observed statistics for one table (DHT namespace or local table)."""

    name: str
    row_count: int = 0
    sketch_size: int = 256
    column_sketches: Dict[str, DistinctSketch] = field(default_factory=dict)

    def observe(self, values: Mapping[str, Any]) -> None:
        self.row_count += 1
        for column, value in values.items():
            sketch = self.column_sketches.get(column)
            if sketch is None:
                sketch = self.column_sketches[column] = DistinctSketch(self.sketch_size)
            sketch.add(value)

    @property
    def columns(self) -> FrozenSet[str]:
        return frozenset(self.column_sketches)

    def distinct(self, column: str) -> Optional[int]:
        sketch = self.column_sketches.get(column)
        if sketch is None:
            return None
        return sketch.estimate()


class Statistics:
    """The deployment-wide catalog: one :class:`TableStatistics` per table."""

    def __init__(self, sketch_size: int = 256) -> None:
        self.sketch_size = sketch_size
        self._tables: Dict[str, TableStatistics] = {}

    # -- maintenance ------------------------------------------------------- #
    def record(self, table: str, values: Mapping[str, Any]) -> None:
        """Fold one published row into the table's statistics."""
        stats = self._tables.get(table)
        if stats is None:
            stats = self._tables[table] = TableStatistics(table, sketch_size=self.sketch_size)
        stats.observe(values)

    def record_rows(self, table: str, rows: Iterable[Mapping[str, Any]]) -> int:
        count = 0
        for values in rows:
            self.record(table, values)
            count += 1
        return count

    def forget(self, table: str) -> None:
        self._tables.pop(table, None)

    # -- lookups ------------------------------------------------------------ #
    def table(self, name: str) -> Optional[TableStatistics]:
        return self._tables.get(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def cardinality(self, table: str) -> Optional[int]:
        stats = self._tables.get(table)
        return stats.row_count if stats is not None else None

    def columns(self, table: str) -> Optional[FrozenSet[str]]:
        stats = self._tables.get(table)
        return stats.columns if stats is not None else None

    def distinct(self, table: str, column: str) -> Optional[int]:
        stats = self._tables.get(table)
        return stats.distinct(column) if stats is not None else None

    # -- estimates ------------------------------------------------------------ #
    def equality_selectivity(self, table: str, column: str) -> Optional[float]:
        """Estimated fraction of rows an equality predicate on ``column`` keeps."""
        distinct = self.distinct(table, column)
        if not distinct:
            return None
        return 1.0 / distinct

    def join_cardinality(
        self,
        left_rows: Optional[int],
        left_distinct: Optional[int],
        right_table: str,
        right_column: str,
    ) -> Optional[int]:
        """Standard equi-join estimate: |L| * |R| / max(d(L.key), d(R.key))."""
        right_rows = self.cardinality(right_table)
        right_distinct = self.distinct(right_table, right_column)
        if left_rows is None or right_rows is None:
            return None
        denominator = max(left_distinct or 1, right_distinct or 1, 1)
        return max(1, (left_rows * right_rows) // denominator)

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """A plain-data snapshot, convenient for debugging and docs examples."""
        return {
            name: {
                "rows": stats.row_count,
                "columns": {
                    column: sketch.estimate()
                    for column, sketch in stats.column_sketches.items()
                },
            }
            for name, stats in self._tables.items()
        }
