"""Per-query integrity policy: byzantine-resilient aggregation (Section 4.1.2).

Fail-stop churn (``repro.qp.resilience``) keeps a query answering when
nodes crash; this module keeps the *answer* trustworthy when nodes lie.
The paper sketches three defenses for malicious participants — spot-check
commitments (the SIA approach), redundant computation, and rate
limitation — and :class:`IntegrityPolicy` turns the first two on for one
query:

* ``spot_check`` — every origin sends the proxy a *commitment* over its
  cumulative local contribution (and, when sampled, the contribution
  itself); the aggregation-tree root sends per-origin *claims* instead of
  final rows.  The proxy verifies each claim against the matching
  commitment, flags violations per origin, repairs sampled origins from
  their own reports, and recomputes the result itself — so a hop that
  inflated, dropped, or forged a contribution is caught per origin.
* ``redundancy`` (k) — the plan's hierarchical aggregation opgraph is
  cloned into k independently-rooted trees (distinct DHT key salts, so
  root ownership lands on different nodes) and the proxy reconciles the
  k per-replica totals through :class:`~repro.security.redundancy.
  RedundantAggregation`'s median combiner: a minority of corrupted
  replicas is out-voted rather than fatal.

Threat model (see ``docs/SECURITY.md``): attackers misbehave in their
*aggregator* role — corrupting, dropping, or forging contributions that
pass through them — while shipping their own local data honestly.  A node
lying about its own rows is the classic bounded-influence residual the
SIA literature accepts; spot-checks cannot distinguish it from bad data.

The policy travels in ``plan.metadata["integrity"]`` (the same envelope
mechanism :class:`~repro.qp.resilience.ResiliencePolicy` uses) so every
executing node sees the same settings.  When the policy is disabled the
query path is byte-identical to before: no extra namespace, no messages,
no per-tuple work.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple as PyTuple, Union

from repro.qp.opgraph import OpGraph, QueryPlan
from repro.qp.operators.groupby import parse_aggregate_specs
from repro.qp.tuples import Tuple
from repro.security.redundancy import RedundantAggregation
from repro.security.spot_check import commit_to_states

INTEGRITY_METADATA_KEY = "integrity"

# Verification traffic (origin self-reports, root claims) rides its own
# namespace straight to the proxy via direct messages, so it shares no
# custody path with the aggregation tree an attacker may sit on.
INTEGRITY_NAMESPACE = "__integrity__"

HIERARCHICAL_OP_TYPE = "hierarchical_aggregate"


@dataclass(frozen=True)
class IntegrityPolicy:
    """Byzantine-integrity settings for one query (all off by default).

    ``spot_check_sample`` is the fraction of origins whose self-report
    carries full states (repairable) rather than just the commitment
    (detectable): 1.0 trades bandwidth for exact repair, lower values
    lean on redundancy to out-vote what cannot be repaired.
    """

    spot_check: bool = False
    redundancy: int = 1
    spot_check_sample: float = 1.0
    combiner: str = "median"
    outlier_threshold: float = 0.5

    @classmethod
    def enabled(cls, redundancy: int = 3, spot_check_sample: float = 1.0) -> "IntegrityPolicy":
        """The everything-on policy used when a deployment runs under attack."""
        return cls(
            spot_check=True,
            redundancy=redundancy,
            spot_check_sample=spot_check_sample,
        )

    @property
    def active(self) -> bool:
        return self.spot_check or self.redundancy > 1

    def to_metadata(self) -> Dict[str, Any]:
        return {
            "spot_check": self.spot_check,
            "redundancy": self.redundancy,
            "spot_check_sample": self.spot_check_sample,
            "combiner": self.combiner,
            "outlier_threshold": self.outlier_threshold,
        }

    @classmethod
    def from_metadata(cls, metadata: Optional[Mapping[str, Any]]) -> "IntegrityPolicy":
        payload = (metadata or {}).get(INTEGRITY_METADATA_KEY)
        if not isinstance(payload, Mapping):
            return cls()
        return cls(
            spot_check=bool(payload.get("spot_check", False)),
            redundancy=int(payload.get("redundancy", 1)),
            spot_check_sample=float(payload.get("spot_check_sample", 1.0)),
            combiner=str(payload.get("combiner", "median")),
            outlier_threshold=float(payload.get("outlier_threshold", 0.5)),
        )


def resolve_integrity(
    value: Union[None, bool, Mapping[str, Any], IntegrityPolicy],
    default: Optional[IntegrityPolicy] = None,
) -> Optional[IntegrityPolicy]:
    """Normalise the user-facing ``integrity=`` argument.

    ``None`` falls back to the deployment default, ``True``/``False`` pick
    the fully-enabled/disabled policies, and a mapping overrides individual
    fields of :class:`IntegrityPolicy`.
    """
    if value is None:
        return default
    if isinstance(value, IntegrityPolicy):
        return value
    if value is True:
        return IntegrityPolicy.enabled()
    if value is False:
        return IntegrityPolicy()
    if isinstance(value, Mapping):
        return IntegrityPolicy(**dict(value))
    raise TypeError(
        f"integrity must be an IntegrityPolicy, bool, or mapping, not {type(value)!r}"
    )


def replica_sampled(query_id: str, replica: int, origin: str, fraction: float) -> bool:
    """Whether ``origin``'s self-report for one replica carries full states.

    Hashed (not drawn from an RNG) so origin and proxy agree without
    coordination — the same trick trace sampling uses.
    """
    if fraction >= 1.0:
        return True
    if fraction <= 0.0:
        return False
    token = zlib.crc32(f"{query_id}|{replica}|{origin}".encode()) & 0xFFFFFFFF
    return token / 0x100000000 < fraction


def _hierarchical_specs(plan: QueryPlan) -> List[PyTuple[OpGraph, Any]]:
    found = []
    for graph in plan.opgraphs:
        for spec in graph.operators.values():
            if spec.op_type == HIERARCHICAL_OP_TYPE:
                found.append((graph, spec))
    return found


def apply_integrity(plan: QueryPlan, policy: IntegrityPolicy) -> None:
    """Stamp ``policy`` into ``plan.metadata`` and replicate the plan's
    hierarchical aggregation opgraph into ``policy.redundancy``
    independently-rooted trees.

    Replica 0 keeps the original namespace (so a policy of ``redundancy=1``
    is wire-identical to no policy); replicas 1..k-1 salt the aggregation
    namespace, which moves the root identifier — and therefore root
    ownership — to different nodes.
    """
    if not policy.active:
        return
    if plan.metadata.get("cq"):
        raise ValueError(
            "integrity verification covers snapshot queries only: a standing "
            "query has no single flush at which origins can commit to their "
            "cumulative contribution (see docs/SECURITY.md)"
        )
    sites = _hierarchical_specs(plan)
    if not sites:
        raise ValueError(
            "integrity verification requires a hierarchical aggregation plan "
            "(aggregation_strategy='hierarchical'); this plan has no "
            "hierarchical_aggregate operator"
        )
    plan.metadata[INTEGRITY_METADATA_KEY] = policy.to_metadata()
    already_replicated = any("~r" in graph.graph_id for graph in plan.opgraphs)
    if policy.redundancy <= 1 or already_replicated:
        return
    for base_graph, _spec in sites:
        payload = base_graph.to_dict()
        for replica in range(1, policy.redundancy):
            clone = OpGraph.from_dict(payload)
            clone.graph_id = f"{base_graph.graph_id}~r{replica}"
            for op_id, spec in list(clone.operators.items()):
                if spec.op_type == HIERARCHICAL_OP_TYPE:
                    clone.operators[op_id] = spec.with_params(replica=replica)
            plan.add_graph(clone)


# -- proxy-side verification ---------------------------------------------------- #
@dataclass
class IntegrityReport:
    """What the proxy's verification pass concluded (see ``QueryResult.integrity``).

    ``verification_failures`` is one entry per (replica, origin) whose
    root claim contradicted — or omitted — the origin's own commitment;
    ``suspected_nodes`` is the best-effort attribution (relay stamps on
    corrupted batches, roots of outlier replicas).  ``replica_disagreement``
    is the worst relative spread across replicas over all groups, and
    ``inconclusive_groups`` lists groups where no strict majority of
    replicas agreed (see :class:`~repro.security.redundancy.RedundantAggregation`).
    """

    replicas: int = 1
    origins_verified: int = 0
    verification_failures: List[Dict[str, Any]] = field(default_factory=list)
    suspected_nodes: List[Any] = field(default_factory=list)
    repaired_origins: int = 0
    unrepaired_origins: int = 0
    unreported_origins: int = 0
    missing_replicas: List[int] = field(default_factory=list)
    outlier_replicas: List[int] = field(default_factory=list)
    inconclusive_groups: List[Any] = field(default_factory=list)
    replica_disagreement: float = 0.0

    @property
    def failed_pairs(self) -> List[PyTuple[int, str]]:
        """(replica, origin) pairs whose claim failed verification."""
        return [
            (entry["replica"], entry["origin"]) for entry in self.verification_failures
        ]

    @property
    def clean(self) -> bool:
        return (
            not self.verification_failures
            and not self.outlier_replicas
            and not self.inconclusive_groups
        )



def mean_relative_error(
    rows: List[Tuple],
    reference: Mapping[Any, float],
    column: str,
    group_columns: List[str],
) -> float:
    """Mean relative error of result ``rows`` against a ground-truth mapping
    ``group key -> expected value`` (benchmark/ablation helper; a group
    missing from ``rows`` counts as fully wrong)."""
    if not reference:
        return 0.0
    observed: Dict[Any, Any] = {}
    for tup in rows:
        key = tup.key(group_columns) if group_columns else ()
        observed[key] = tup.get(column)
    errors = []
    for key, expected in reference.items():
        value = observed.get(key)
        if value is None or expected == 0:
            errors.append(0.0 if value == expected else 1.0)
        else:
            errors.append(abs(float(value) - expected) / abs(expected))
    return sum(errors) / len(errors)


class IntegrityCollector:
    """Proxy-side assembly and verification of one query's integrity traffic.

    Receives origin self-reports and root claims on
    :data:`INTEGRITY_NAMESPACE`, and at query completion verifies each
    claim against its commitment, repairs what the sampled self-reports
    allow, recomputes per-replica group totals with the plan's own merge
    functions, and reconciles replicas through the policy's combiner.
    ``finalize`` returns the recomputed result rows plus the
    :class:`IntegrityReport`.
    """

    def __init__(self, plan: QueryPlan, policy: IntegrityPolicy) -> None:
        self.plan = plan
        self.policy = policy
        sites = _hierarchical_specs(plan)
        if not sites:
            raise ValueError("plan has no hierarchical_aggregate operator")
        _graph, spec = sites[0]
        self.group_columns: List[str] = list(spec.params.get("group_columns", []))
        self.aggregate_specs = parse_aggregate_specs(list(spec.params["aggregates"]))
        self.output_table: str = spec.params.get("output_table", "aggregate")
        self._merge_functions = [agg.build() for agg in self.aggregate_specs]
        # replica -> {"node": root address, "origins": {origin: {"partials", "relays"}}}
        self._claims: Dict[int, Dict[str, Any]] = {}
        # replica -> origin -> newest self-report
        self._reports: Dict[int, Dict[str, Dict[str, Any]]] = {}
        self.messages_received = 0

    # -- ingestion -------------------------------------------------------- #
    def receive(self, payload: Any) -> None:
        if not isinstance(payload, dict):
            return
        kind = payload.get("kind")
        replica = int(payload.get("replica", 0))
        self.messages_received += 1
        if kind == "origin":
            origin = payload.get("origin")
            if origin is None:
                return
            reports = self._reports.setdefault(replica, {})
            previous = reports.get(origin)
            # A rejoined node's fresh incarnation supersedes its pre-failure
            # report, matching the root ledger's newest-incarnation rule.
            if previous is None or payload.get("inc_ts", 0.0) >= previous.get("inc_ts", 0.0):
                reports[origin] = payload
        elif kind == "root":
            origins = payload.get("origins")
            if not isinstance(origins, dict):
                return
            entry = self._claims.setdefault(replica, {"node": payload.get("node"), "origins": {}})
            entry["node"] = payload.get("node")
            entry["origins"].update(origins)

    # -- decoding helpers -------------------------------------------------- #
    @staticmethod
    def _decode_partials(partials: Any) -> Dict[PyTuple[Any, ...], List[Any]]:
        decoded: Dict[PyTuple[Any, ...], List[Any]] = {}
        for item in partials or []:
            decoded[tuple(item["key"])] = list(item["states"])
        return decoded

    def _merge_into(
        self,
        buffer: Dict[PyTuple[Any, ...], List[Any]],
        key: PyTuple[Any, ...],
        states: List[Any],
    ) -> None:
        existing = buffer.get(key)
        if existing is None:
            buffer[key] = list(states)
            return
        buffer[key] = [
            fn.merge(left, right)
            for fn, left, right in zip(self._merge_functions, existing, states)
        ]

    # -- verification ------------------------------------------------------- #
    def finalize(self) -> PyTuple[List[Tuple], IntegrityReport]:
        """Verify, repair, recompute, and reconcile; returns (rows, report)."""
        policy = self.policy
        report = IntegrityReport(replicas=max(1, policy.redundancy))
        suspected: set = set()
        replica_totals: Dict[int, Dict[PyTuple[Any, ...], List[Any]]] = {}
        replica_roots: Dict[int, Any] = {}
        for replica in range(report.replicas):
            claims = self._claims.get(replica)
            reports = self._reports.get(replica, {})
            if claims is None and not reports:
                report.missing_replicas.append(replica)
                continue
            origin_states: Dict[str, Dict[PyTuple[Any, ...], List[Any]]] = {}
            claimed_origins = claims["origins"] if claims is not None else {}
            for origin, claim in claimed_origins.items():
                origin_states[origin] = self._decode_partials(claim.get("partials"))
            if policy.spot_check:
                for origin, self_report in reports.items():
                    report.origins_verified += 1
                    claimed = origin_states.get(origin)
                    if claimed is not None and commit_to_states(origin, claimed) == self_report.get("commitment"):
                        continue
                    if claims is None:
                        # The whole replica's root never reported (died at
                        # flush, message lost): rebuild what the sampled
                        # reports allow without flagging every origin.
                        pass
                    else:
                        reason = "missing" if claimed is None else "mismatch"
                        report.verification_failures.append(
                            {"replica": replica, "origin": origin, "reason": reason}
                        )
                        for relay in (claimed_origins.get(origin) or {}).get("relays", []):
                            suspected.add(relay)
                    if "partials" in self_report:
                        origin_states[origin] = self._decode_partials(self_report["partials"])
                        report.repaired_origins += 1
                    else:
                        # Detected but unrepairable: drop the corrupt claim
                        # and let redundancy out-vote the thinner replica.
                        origin_states.pop(origin, None)
                        report.unrepaired_origins += 1
                report.unreported_origins += sum(
                    1 for origin in claimed_origins if origin not in reports
                )
            if claims is None and not origin_states:
                report.missing_replicas.append(replica)
                continue
            totals: Dict[PyTuple[Any, ...], List[Any]] = {}
            for states_by_key in origin_states.values():
                for key, states in states_by_key.items():
                    self._merge_into(totals, key, states)
            replica_totals[replica] = totals
            if claims is not None:
                replica_roots[replica] = claims.get("node")
        rows = self._reconcile(replica_totals, replica_roots, report, suspected)
        report.suspected_nodes = sorted(suspected, key=repr)
        return rows, report

    def _reconcile(
        self,
        replica_totals: Dict[int, Dict[PyTuple[Any, ...], List[Any]]],
        replica_roots: Dict[int, Any],
        report: IntegrityReport,
        suspected: set,
    ) -> List[Tuple]:
        group_keys = sorted(
            {key for totals in replica_totals.values() for key in totals}, key=repr
        )
        combiner = RedundantAggregation(
            combiner=self.policy.combiner, outlier_threshold=self.policy.outlier_threshold
        )
        outliers: set = set()
        rows: List[Tuple] = []
        for key in group_keys:
            payload: Dict[str, Any] = {}
            for index, (agg, fn) in enumerate(zip(self.aggregate_specs, self._merge_functions)):
                per_replica = [
                    (replica, fn.result(totals[key][index]))
                    for replica, totals in sorted(replica_totals.items())
                    if key in totals
                ]
                values = [value for _replica, value in per_replica]
                numeric = values and all(
                    isinstance(value, (int, float)) and not isinstance(value, bool)
                    for value in values
                )
                if numeric and len(values) > 1:
                    combined = combiner.combine(values)
                    payload[agg.output] = combined.combined_value
                    for outlier_index in combined.suspected_outliers:
                        outliers.add(per_replica[outlier_index][0])
                    if combined.inconclusive and key not in report.inconclusive_groups:
                        report.inconclusive_groups.append(key)
                    center = abs(combined.combined_value) or 1.0
                    spread = (max(values) - min(values)) / center
                    report.replica_disagreement = max(report.replica_disagreement, spread)
                else:
                    payload[agg.output] = values[0] if values else None
            rows.append(self._group_tuple(key, payload))
        report.outlier_replicas = sorted(outliers)
        for replica in outliers:
            root = replica_roots.get(replica)
            if root is not None:
                suspected.add(root)
        return rows

    def _group_tuple(self, key: PyTuple[Any, ...], payload: Dict[str, Any]) -> Tuple:
        values = dict(zip(self.group_columns, key))
        values.update(payload)
        return Tuple(self.output_table, values)
