"""Canonical plan fingerprints for multi-query sharing.

Two standing windowed queries can share one installed opgraph when they
compute the same aggregation over the same data: same base table, same
predicate, same group keys, same aggregate set.  Window *geometry*
(window length, slide, lifetime, grace) is deliberately excluded — the
pane-compatibility layer in :mod:`repro.cq.sharing` serves subscribers
at different slides from one shared pane stream, and lifetimes are
refcounted per subscriber.

The fingerprint is computed from what the plan actually executes, not
from the SQL text: the scan / selection / aggregation operator params of
the compiled opgraphs, canonicalised through the interned
:class:`~repro.qp.tuples.Schema` of the output shape.  Two statements
that differ only in formatting, window clause, or ORDER BY / LIMIT
(applied client-side per epoch) therefore collide — which is the point.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Optional, Tuple as PyTuple

from repro.cq.windows import CQ_METADATA_KEY
from repro.qp.aggregates import AggregateSpec
from repro.qp.opgraph import QueryPlan
from repro.qp.tuples import Schema

# Version tag folded into every digest so a change to the canonical form
# can never collide with fingerprints minted by an older release.
_FINGERPRINT_VERSION = "pier-shared-plan/1"

# Opgraph shapes the sharing layer understands: the aggregation op that
# defines group keys + aggregate set, per multi-phase strategy.
_AGGREGATION_OPS = ("partial_aggregate", "hierarchical_aggregate")
_SCAN_OPS = ("local_table", "dht_scan")


@dataclass(frozen=True)
class PlanComponents:
    """The sharing-relevant pieces of one compiled windowed plan.

    ``predicate`` keeps the plan's original expression form (nested
    lists) so a shared plan can be rebuilt from it; fingerprinting
    canonicalises it separately.
    """

    table: str
    source: str  # "local_table" | "dht_scan" — the access method
    predicate: Any
    group_columns: PyTuple[str, ...]
    aggregates: PyTuple[AggregateSpec, ...]
    output_table: str
    strategy: str  # "flat" | "hierarchical"


def plan_components(plan: QueryPlan) -> Optional[PlanComponents]:
    """Extract the shareable shape of ``plan``, or ``None``.

    Only windowed (continuous) aggregation plans in one of the known
    multi-phase shapes are shareable; anything else — one-shot plans,
    joins, hand-built opgraphs the walk does not recognise — returns
    ``None`` and the subscriber gets a private install.
    """
    from repro.qp.operators.groupby import parse_aggregate_specs

    if not (plan.metadata or {}).get(CQ_METADATA_KEY):
        return None
    aggregation = None
    strategy = "flat"
    scan = None
    for graph in plan.opgraphs:
        for spec in graph.operators.values():
            if spec.op_type in _AGGREGATION_OPS and aggregation is None:
                aggregation = spec
                if spec.op_type == "hierarchical_aggregate":
                    strategy = "hierarchical"
            elif spec.op_type in _SCAN_OPS and scan is None:
                # Query-scoped scans read the plan's own rendezvous
                # namespace — an internal edge, not the base table.
                if spec.op_type == "dht_scan" and spec.params.get("scoped"):
                    continue
                scan = spec
    if aggregation is None or scan is None:
        return None
    table = scan.params.get("table") or scan.params.get("namespace")
    if not table:
        return None
    predicate = _base_predicate(plan)
    try:
        aggregates = tuple(parse_aggregate_specs(aggregation.params.get("aggregates", [])))
    except (KeyError, TypeError, ValueError):
        return None
    return PlanComponents(
        table=table,
        source=scan.op_type,
        predicate=predicate,
        group_columns=tuple(aggregation.params.get("group_columns", [])),
        aggregates=aggregates,
        output_table=aggregation.params.get("output_table", "aggregate"),
        strategy=strategy,
    )


def _base_predicate(plan: QueryPlan) -> Any:
    """The selection applied directly to the base-table scan, if any."""
    for graph in plan.opgraphs:
        scan_id = None
        for spec in graph.operators.values():
            if spec.op_type == "local_table" or (
                spec.op_type == "dht_scan" and not spec.params.get("scoped")
            ):
                scan_id = spec.operator_id
                break
        if scan_id is None:
            continue
        for spec in graph.operators.values():
            if spec.op_type == "selection" and spec.inputs and spec.inputs[0] == scan_id:
                return spec.params.get("predicate")
    return None


def _canonical(value: Any) -> Any:
    """Hashable canonical form of an expression / param value."""
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _canonical(item)) for key, item in value.items()))
    return value


def fingerprint_components(components: PlanComponents) -> str:
    """Digest one extracted plan shape into a short stable fingerprint.

    The output shape passes through ``Schema.intern`` so two plans whose
    results share one interned schema canonicalise identically, and the
    aggregate set is order-insensitive (``COUNT, SUM`` == ``SUM, COUNT``).
    The multi-phase *strategy* is excluded: flat and hierarchical
    execution of the same aggregation produce identical results, so they
    may share.
    """
    schema = Schema.intern(
        components.output_table,
        components.group_columns + tuple(spec.output for spec in components.aggregates),
    )
    canonical = (
        _FINGERPRINT_VERSION,
        components.table,
        components.source,
        _canonical(components.predicate),
        schema.table,
        schema.columns,
        components.group_columns,
        tuple(
            sorted(
                (spec.function, spec.column or "", spec.output, _canonical(spec.params))
                for spec in components.aggregates
            )
        ),
    )
    digest = hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()
    return digest[:12]


def plan_fingerprint(plan: QueryPlan) -> Optional[str]:
    """The sharing fingerprint of ``plan``, or ``None`` when not shareable."""
    components = plan_components(plan)
    if components is None:
        return None
    return fingerprint_components(components)
