"""Per-node query executor (paper Section 3.3.2, "Life of a Query").

When an opgraph reaches a node, the executor instantiates each operator,
wires the local dataflow (data pushes child -> parent; probes pull parent
-> child), starts the operators, and issues the initial probe.  The opgraph
runs until the query's timeout expires, at which point buffered state is
flushed in topological order, operators are stopped, and any query-scoped
DHT state on this node is discarded.

Because PIER nodes are only loosely synchronised, an opgraph may start
after other nodes have already begun sending it data; the DHT's storage of
that data plus the scan-then-subscribe access methods let late starters
"catch up".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.overlay.wrapper import OverlayNode
from repro.qp.opgraph import OpGraph, QueryPlan
from repro.qp.operators.base import ExecutionContext, PhysicalOperator, build_operator
from repro.qp.operators.control import ControlFlowManager
from repro.qp.tuples import Tuple

# How long a cancelled query's tombstone lives.  It only needs to outlast
# dissemination envelopes still in flight (whose lifetime is the query
# timeout); matching the default soft-state lifetime is comfortably enough.
CANCEL_TOMBSTONE_LIFETIME = 600.0


@dataclass
class InstalledGraph:
    """Book-keeping for one opgraph running on this node.

    ``deadline`` is when the graph tears down; lifetime renewal of a
    standing query pushes it out (see :meth:`QueryExecutor.extend_query`).
    """

    query_id: str
    graph: OpGraph
    context: ExecutionContext
    operators: Dict[str, PhysicalOperator]
    started_at: float
    deadline: float = 0.0
    finished: bool = False


class QueryExecutor:
    """Installs and runs opgraphs on one PIER node."""

    def __init__(
        self, overlay: OverlayNode, exchange_defaults: Optional[Dict[str, Any]] = None
    ) -> None:
        self.overlay = overlay
        self._installed: Dict[str, InstalledGraph] = {}
        # Node-local data sources shared by every query on this node.
        self.local_tables: Dict[str, List[Tuple]] = {}
        self.streams: Dict[str, Callable[[float], List[Tuple]]] = {}
        # Live subscribers to node-local tables: standing queries' scans
        # register here so rows appended mid-query flow into the dataflow
        # (the local-table analogue of the DHT scan's newData upcall).
        self._table_listeners: Dict[str, List[Callable[[List[Tuple]], None]]] = {}
        # Node-level defaults for the batching exchange (see PutExchange);
        # per-query plan metadata overrides them.
        self.exchange_defaults = dict(exchange_defaults or {})
        # Queries cancelled on this node: envelopes still in flight when the
        # cancellation arrived must not install after the fact.
        self._cancelled_queries: set = set()
        self.graphs_installed = 0
        self.graphs_completed = 0

    # -- node-local data sources ------------------------------------------- #
    def register_local_table(self, name: str, rows: List[Tuple]) -> None:
        """Expose node-local rows to ``local_table`` access methods."""
        self.local_tables[name] = rows

    def append_local_rows(self, name: str, rows: List[Tuple]) -> None:
        """Append rows to a node-local table and push them to any standing
        queries scanning it (the live-publish path of continuous queries)."""
        rows = list(rows)
        self.local_tables.setdefault(name, []).extend(rows)
        for listener in list(self._table_listeners.get(name, ())):
            listener(rows)

    def subscribe_local_table(
        self, name: str, listener: Callable[[List[Tuple]], None]
    ) -> Callable[[], None]:
        """Register a live listener for rows appended to a local table;
        returns the matching unsubscribe callable."""
        listeners = self._table_listeners.setdefault(name, [])
        listeners.append(listener)

        def unsubscribe() -> None:
            try:
                listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def register_stream(self, name: str, producer: Callable[[float], List[Tuple]]) -> None:
        """Expose a stream producer to ``stream_source`` access methods."""
        self.streams[name] = producer

    # -- installation ---------------------------------------------------------- #
    def install(
        self,
        query_id: str,
        graph: OpGraph,
        timeout: float,
        proxy_address: Any,
        deliver_result: Optional[Callable[[Tuple], None]] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> Optional[InstalledGraph]:
        """Instantiate and start ``graph``.  Duplicate installs are ignored,
        as are opgraphs of queries already cancelled on this node."""
        if query_id in self._cancelled_queries:
            return None
        install_key = f"{query_id}/{graph.graph_id}"
        if install_key in self._installed:
            return None
        extras: Dict[str, Any] = {
            "local_tables": self.local_tables,
            "streams": self.streams,
            "subscribe_local_table": self.subscribe_local_table,
        }
        for knob in ("exchange_batch_size", "exchange_flush_interval", "result_flush_interval"):
            value = (metadata or {}).get(knob, self.exchange_defaults.get(knob))
            if value is not None:
                extras[knob] = value
        # The query's resilience policy rides in the dissemination envelope
        # so churn-aware operators (aggregation-tree handoff) see the same
        # settings on every executing node.
        resilience = (metadata or {}).get("resilience")
        if resilience is not None:
            extras["resilience"] = dict(resilience)
        # The trace context travels the same way: every executing node sees
        # the query's trace id and the proxy's root span (repro.obs).
        trace = (metadata or {}).get("trace")
        if trace is not None:
            extras["trace"] = dict(trace)
        # So does the integrity policy (repro.qp.integrity): spot-check
        # commitments and replica accounting need identical settings at
        # every origin and root.
        integrity = (metadata or {}).get("integrity")
        if integrity is not None:
            extras["integrity"] = dict(integrity)
        context = ExecutionContext(
            overlay=self.overlay,
            query_id=query_id,
            timeout=timeout,
            proxy_address=proxy_address,
            deliver_result=deliver_result,
            lifetime=max(timeout * 2.0, 60.0),
            extras=extras,
        )
        operators = {
            spec.operator_id: build_operator(spec, context)
            for spec in graph.topological_order()
        }
        # Wire the data channel: producer pushes into the consumer's slot.
        for spec in graph.operators.values():
            consumer = operators[spec.operator_id]
            for slot, input_id in enumerate(spec.inputs):
                operators[input_id].add_parent(consumer, slot)
        started_at = self.overlay.runtime.get_current_time()
        installed = InstalledGraph(
            query_id=query_id,
            graph=graph,
            context=context,
            operators=operators,
            started_at=started_at,
            deadline=started_at + timeout,
        )
        self._installed[install_key] = installed
        self.graphs_installed += 1
        tracer = getattr(self.overlay.runtime, "tracer", None)
        if tracer is not None and trace is not None:
            tracer.event(
                "opgraph.install",
                trace.get("trace_id"),
                parent_id=trace.get("span"),
                node=self.overlay.address,
                graph=graph.graph_id,
                operators=len(operators),
            )
        self._start(installed)
        # A node executes an opgraph until the query's timeout expires.
        self.overlay.runtime.schedule_event(timeout, install_key, self._on_timeout)
        return installed

    def _start(self, installed: InstalledGraph) -> None:
        order = [installed.operators[spec.operator_id] for spec in installed.graph.topological_order()]
        for operator in order:
            operator.start()
        # Control channel: a ControlFlowManager drives probes if present,
        # otherwise the executor probes every source operator once.
        controls = [op for op in order if isinstance(op, ControlFlowManager)]
        sources = [
            installed.operators[spec.operator_id] for spec in installed.graph.sources()
        ]
        if controls:
            for control in controls:
                for source in sources:
                    control.register_child(source)
                control.start()
        else:
            for source in sources:
                source.probe()

    # -- teardown ------------------------------------------------------------------ #
    def _on_timeout(self, install_key: str) -> None:
        installed = self._installed.get(install_key)
        if installed is None or installed.finished:
            return
        if self.overlay.runtime.get_current_time() + 1e-9 < installed.deadline:
            return  # lifetime was renewed; a later timer covers the new deadline
        self.finish(installed)

    def extend_query(self, query_id: str, remaining: float) -> int:
        """Push out the teardown deadline of a standing query's opgraphs
        (lifetime renewal): each running graph of ``query_id`` now tears
        down ``remaining`` seconds from now."""
        if remaining <= 0:
            return 0
        now = self.overlay.runtime.get_current_time()
        extended = 0
        for install_key, installed in self._installed.items():
            if installed.query_id != query_id or installed.finished:
                continue
            installed.deadline = now + remaining
            self.overlay.runtime.schedule_event(remaining, install_key, self._on_timeout)
            extended += 1
        return extended

    def finish(self, installed: InstalledGraph, flush: bool = True) -> None:
        """Flush buffered state bottom-up, stop operators, release DHT state.

        ``flush=False`` aborts instead (query cancellation): buffered
        partial state is discarded rather than pushed downstream, so a
        cancelled query stops generating network traffic.
        """
        if installed.finished:
            return
        installed.finished = True
        if flush:
            # The teardown flush runs from the executor's timeout timer,
            # outside any operator scope — activate the query's trace so
            # the sends the flush triggers stay causally attributed.
            context = installed.context
            tracer = context.tracer
            previous = (
                tracer.activate(context.trace_id, context.trace_parent)
                if tracer is not None
                else None
            )
            try:
                for spec in installed.graph.topological_order():
                    installed.operators[spec.operator_id].flush()
            finally:
                if tracer is not None:
                    tracer.restore(previous)
        for operator in installed.operators.values():
            operator.stop()
        self._release_query_state(installed)
        self.graphs_completed += 1
        sanitizer = getattr(self.overlay.runtime, "sanitizer", None)
        if sanitizer is not None:
            # Teardown ledger: prove no timer stayed armed and no operator
            # still buffers tuples after stop() (raises SanitizerError).
            sanitizer.check_teardown(installed, node_address=self.overlay.address)

    def cancel_query(self, query_id: str) -> int:
        """Abort every opgraph of ``query_id`` running on this node, and
        refuse any of its opgraphs that are still in flight."""
        if query_id not in self._cancelled_queries:
            self._cancelled_queries.add(query_id)
            self.overlay.runtime.schedule_event(
                CANCEL_TOMBSTONE_LIFETIME, query_id, self._cancelled_queries.discard
            )
        cancelled = 0
        for installed in self._installed.values():
            if installed.query_id == query_id and not installed.finished:
                self.finish(installed, flush=False)
                cancelled += 1
        return cancelled

    def on_node_recovered(self) -> int:
        """Drop opgraphs orphaned by this node's failure so re-dissemination
        can reinstall them.

        While the node was down its timers were suppressed — any window,
        hold, or flush callback that came due is gone, so a previously
        installed opgraph can never make progress again.  Abort each
        running graph without flushing (its buffered state is stale) and
        forget the install key so a fresh envelope installs cleanly; the
        abort also releases the query-scoped DHT state this node held, so a
        rejoining node does not double-contribute pre-failure partials.
        """
        purged = 0
        for install_key, installed in list(self._installed.items()):
            if installed.finished:
                continue
            self.finish(installed, flush=False)
            del self._installed[install_key]
            purged += 1
        return purged

    def _release_query_state(self, installed: InstalledGraph) -> None:
        prefix = f"{installed.query_id}:"
        for namespace in list(self.overlay.object_manager.namespaces()):
            if namespace.startswith(prefix):
                self.overlay.object_manager.drop_namespace(namespace)

    # -- introspection --------------------------------------------------------------- #
    def installed_graphs(self) -> List[InstalledGraph]:
        return list(self._installed.values())

    def running_graphs(self) -> List[InstalledGraph]:
        return [graph for graph in self._installed.values() if not graph.finished]

    def operator(self, query_id: str, graph_id: str, operator_id: str) -> Optional[PhysicalOperator]:
        installed = self._installed.get(f"{query_id}/{graph_id}")
        if installed is None:
            return None
        return installed.operators.get(operator_id)
