"""Operator runtime: execution context, base class, and registry.

PIER's event-driven core cannot block, so the classic iterator ("pull")
model is replaced by a *non-blocking iterator*: probes (control) are pulled
from parent to child with ordinary function calls, while tuples (data) are
pushed from child to parent as they arrive (Section 3.3.5).  Each pushed
tuple carries the tag of the probe that requested it, which lets operators
match data with the state they set up for that probe even when nested
probes are arbitrarily reordered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple as PyTuple, Type

from repro.overlay.wrapper import OverlayNode
from repro.qp.opgraph import OperatorSpec
from repro.qp.tuples import MalformedTupleError, Tuple

DEFAULT_PROBE_TAG = "main"


@dataclass
class OperatorStats:
    """Per-operator counters, mirroring what an eddy would observe."""

    tuples_in: int = 0
    tuples_out: int = 0
    tuples_dropped: int = 0


@dataclass
class ExecutionContext:
    """Everything an operator instance needs from its host node.

    ``overlay`` is the node's DHT wrapper; ``query_id`` scopes namespaces so
    concurrent queries do not collide; ``proxy_address`` is where result
    tuples must be shipped; ``deliver_result`` short-circuits delivery when
    the executing node *is* the proxy.
    """

    overlay: OverlayNode
    query_id: str
    timeout: float
    proxy_address: Any
    deliver_result: Optional[Callable[[Tuple], None]] = None
    lifetime: float = 120.0
    extras: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Timer ledger (SimSanitizer): when the runtime sanitizes, every
        # event armed through this context is recorded so that query
        # teardown can prove nothing stayed armed after stop().  ``None``
        # (the default) keeps the hot path a single branch.
        sanitizing = getattr(self.overlay.runtime, "sanitizer", None) is not None
        self.armed_events: Optional[List[Any]] = [] if sanitizing else None
        self.timers_armed_total = 0
        # Causal tracing (repro.obs): resolve the query's trace once per
        # installed graph.  ``tracer`` stays None when tracing is off or
        # this query's trace was sampled out, so per-operator hook sites
        # reduce to one attribute test.
        tracer = getattr(self.overlay.runtime, "tracer", None)
        trace_meta = self.extras.get("trace") if tracer is not None else None
        if trace_meta and tracer.sampled(trace_meta.get("trace_id")):
            self.tracer: Optional[Any] = tracer
            self.trace_id: Optional[str] = trace_meta["trace_id"]
            self.trace_parent: Optional[str] = trace_meta.get("span")
        else:
            self.tracer = None
            self.trace_id = None
            self.trace_parent = None

    def operator_activity(self, spec: OperatorSpec) -> Optional[Any]:
        """One per-operator work accumulator for this query's trace, or
        None when the query is untraced (the common case)."""
        if self.tracer is None:
            return None
        return self.tracer.operator_activity(
            self.trace_id,
            self.trace_parent,
            self.overlay.address,
            spec.operator_id,
            spec.op_type,
        )

    @property
    def now(self) -> float:
        return self.overlay.runtime.get_current_time()

    def schedule(self, delay: float, callback: Callable[[Any], None], data: Any = None) -> Any:
        event = self.overlay.runtime.schedule_event(delay, data, callback)
        armed = self.armed_events
        if armed is not None:
            self.timers_armed_total += 1
            if len(armed) >= 256:
                # Prune dispatched/cancelled entries; only live timers matter.
                armed[:] = [e for e in armed if e._in_heap and not e.cancelled]
            armed.append(event)
        return event

    def scoped_namespace(self, name: str) -> str:
        """A DHT namespace private to this query."""
        return f"{self.query_id}:{name}"


class PhysicalOperator:
    """Base class for all physical operators.

    Subclasses implement :meth:`on_receive` (one input tuple arrived on a
    given slot) and optionally :meth:`start`, :meth:`probe`, :meth:`flush`
    and :meth:`stop`.
    """

    op_type = "abstract"

    def __init__(self, spec: OperatorSpec, context: ExecutionContext) -> None:
        self.spec = spec
        self.context = context
        self.stats = OperatorStats()
        # Downstream consumers: (operator, input-slot index at the consumer).
        self._parents: List[PyTuple["PhysicalOperator", int]] = []
        self._stopped = False
        # Timers armed through arm_timer(), cancelled wholesale by stop().
        self._armed_timers: List[Any] = []
        # Trace accumulator (None when untraced): receive()/arm_timer()
        # touch it with two float stores instead of allocating spans.
        self._obs = context.operator_activity(spec) if context is not None else None

    # -- wiring ----------------------------------------------------------- #
    def add_parent(self, parent: "PhysicalOperator", slot: int) -> None:
        self._parents.append((parent, slot))

    @property
    def parents(self) -> List[PyTuple["PhysicalOperator", int]]:
        return list(self._parents)

    def param(self, name: str, default: Any = None) -> Any:
        return self.spec.params.get(name, default)

    def require_param(self, name: str) -> Any:
        if name not in self.spec.params:
            raise ValueError(f"operator {self.spec.operator_id!r} missing param {name!r}")
        return self.spec.params[name]

    # -- timers ------------------------------------------------------------ #
    def arm_timer(
        self, delay: float, callback: Callable[[Any], None], data: Any = None
    ) -> Any:
        """Schedule a timer whose lifetime is bound to this operator.

        Every timer an operator arms MUST go through here (pierlint rule
        P05): the event is tracked so the base :meth:`stop` cancels it,
        which is what keeps a torn-down query from firing callbacks into
        dead state — and what the SimSanitizer's teardown ledger verifies.
        Returns the :class:`~repro.runtime.events.Event` (re-arming
        operators may cancel it individually).
        """
        obs = self._obs
        if obs is not None:
            obs.note_timer(self.context.now)
            # Timer-driven work (flushes, watermark ticks) must run inside
            # the operator's trace scope, or the sends it issues would be
            # causally unattributed — receive-path and timer-path work has
            # to trace identically in both runtimes.
            inner = callback

            def callback(data: Any, _inner=inner, _obs=obs) -> None:
                previous = _obs.enter_timer(self.context.now)
                try:
                    _inner(data)
                finally:
                    _obs.exit(previous)

        timers = self._armed_timers
        if len(timers) >= 8:
            # Drop dispatched/cancelled entries so re-arming operators
            # (interval ticks, per-epoch watermarks) keep the list small.
            self._armed_timers = timers = [
                event for event in timers if event._in_heap and not event.cancelled
            ]
        event = self.context.schedule(delay, callback, data)
        timers.append(event)
        return event

    def disarm_timers(self) -> int:
        """Cancel every timer still armed; returns how many were live."""
        cancelled = 0
        for event in self._armed_timers:
            if event._in_heap and not event.cancelled:
                event.cancel()
                cancelled += 1
        self._armed_timers.clear()
        return cancelled

    # -- lifecycle --------------------------------------------------------- #
    def start(self) -> None:
        """Called once when the opgraph is installed on this node."""

    def stop(self) -> None:
        """Called at query teardown (timeout).  Cancels armed timers;
        overriding subclasses must call ``super().stop()``."""
        self._stopped = True
        self.disarm_timers()

    def residual_buffered(self) -> int:
        """Tuples still buffered after :meth:`stop` (sanitizer ledger).

        Buffering operators override this; anything non-zero after
        teardown is reported as a leak when sanitizing.
        """
        return 0

    def flush(self) -> None:
        """Emit any buffered state (called in topological order at timeout,
        and by windowed operators when their window closes)."""

    def probe(self, tag: str = DEFAULT_PROBE_TAG) -> None:
        """Control-channel request for data, propagated parent -> child.

        The default implementation just records the request; stateful
        operators override it to set up per-probe state on the heap.
        Sources respond to probes by beginning to push tuples upward.
        """

    # -- dataflow ------------------------------------------------------------ #
    def receive(self, tup: Tuple, slot: int = 0, tag: str = DEFAULT_PROBE_TAG) -> None:
        """Data-channel entry point: a child pushed ``tup`` into ``slot``."""
        if self._stopped:
            return
        self.stats.tuples_in += 1
        obs = self._obs
        previous = obs.enter(self.context.now) if obs is not None else None
        try:
            self.on_receive(tup, slot, tag)
        except MalformedTupleError:
            # Best-effort policy (Section 3.3.4): drop tuples that do not
            # match the query's expectations.
            self.stats.tuples_dropped += 1
        except (TypeError, KeyError):
            self.stats.tuples_dropped += 1
        finally:
            if obs is not None:
                obs.exit(previous)

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        raise NotImplementedError

    def emit(self, tup: Tuple, tag: str = DEFAULT_PROBE_TAG) -> None:
        """Push ``tup`` to every downstream consumer."""
        if self._stopped:
            return
        self.stats.tuples_out += 1
        for parent, slot in self._parents:
            parent.receive(tup, slot, tag)


_OPERATOR_REGISTRY: Dict[str, Type[PhysicalOperator]] = {}


def register_operator(cls: Type[PhysicalOperator]) -> Type[PhysicalOperator]:
    """Class decorator adding a physical operator to the plan-time registry."""
    if not cls.op_type or cls.op_type == "abstract":
        raise ValueError(f"{cls.__name__} must define a concrete op_type")
    _OPERATOR_REGISTRY[cls.op_type] = cls
    return cls


def build_operator(spec: OperatorSpec, context: ExecutionContext) -> PhysicalOperator:
    """Instantiate the physical operator named by ``spec.op_type``."""
    try:
        cls = _OPERATOR_REGISTRY[spec.op_type]
    except KeyError as exc:
        raise ValueError(f"unknown operator type {spec.op_type!r}") from exc
    return cls(spec, context)


def registered_operator_types() -> List[str]:
    return sorted(_OPERATOR_REGISTRY)
