"""Operator runtime: execution context, base class, and registry.

PIER's event-driven core cannot block, so the classic iterator ("pull")
model is replaced by a *non-blocking iterator*: probes (control) are pulled
from parent to child with ordinary function calls, while tuples (data) are
pushed from child to parent as they arrive (Section 3.3.5).  Each pushed
tuple carries the tag of the probe that requested it, which lets operators
match data with the state they set up for that probe even when nested
probes are arbitrarily reordered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple as PyTuple, Type

from repro.overlay.wrapper import OverlayNode
from repro.qp.opgraph import OperatorSpec
from repro.qp.tuples import MalformedTupleError, Tuple

DEFAULT_PROBE_TAG = "main"


@dataclass
class OperatorStats:
    """Per-operator counters, mirroring what an eddy would observe."""

    tuples_in: int = 0
    tuples_out: int = 0
    tuples_dropped: int = 0


@dataclass
class ExecutionContext:
    """Everything an operator instance needs from its host node.

    ``overlay`` is the node's DHT wrapper; ``query_id`` scopes namespaces so
    concurrent queries do not collide; ``proxy_address`` is where result
    tuples must be shipped; ``deliver_result`` short-circuits delivery when
    the executing node *is* the proxy.
    """

    overlay: OverlayNode
    query_id: str
    timeout: float
    proxy_address: Any
    deliver_result: Optional[Callable[[Tuple], None]] = None
    lifetime: float = 120.0
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def now(self) -> float:
        return self.overlay.runtime.get_current_time()

    def schedule(self, delay: float, callback: Callable[[Any], None], data: Any = None) -> Any:
        return self.overlay.runtime.schedule_event(delay, data, callback)

    def scoped_namespace(self, name: str) -> str:
        """A DHT namespace private to this query."""
        return f"{self.query_id}:{name}"


class PhysicalOperator:
    """Base class for all physical operators.

    Subclasses implement :meth:`on_receive` (one input tuple arrived on a
    given slot) and optionally :meth:`start`, :meth:`probe`, :meth:`flush`
    and :meth:`stop`.
    """

    op_type = "abstract"

    def __init__(self, spec: OperatorSpec, context: ExecutionContext) -> None:
        self.spec = spec
        self.context = context
        self.stats = OperatorStats()
        # Downstream consumers: (operator, input-slot index at the consumer).
        self._parents: List[PyTuple["PhysicalOperator", int]] = []
        self._stopped = False

    # -- wiring ----------------------------------------------------------- #
    def add_parent(self, parent: "PhysicalOperator", slot: int) -> None:
        self._parents.append((parent, slot))

    @property
    def parents(self) -> List[PyTuple["PhysicalOperator", int]]:
        return list(self._parents)

    def param(self, name: str, default: Any = None) -> Any:
        return self.spec.params.get(name, default)

    def require_param(self, name: str) -> Any:
        if name not in self.spec.params:
            raise ValueError(f"operator {self.spec.operator_id!r} missing param {name!r}")
        return self.spec.params[name]

    # -- lifecycle --------------------------------------------------------- #
    def start(self) -> None:
        """Called once when the opgraph is installed on this node."""

    def stop(self) -> None:
        """Called at query teardown (timeout)."""
        self._stopped = True

    def flush(self) -> None:
        """Emit any buffered state (called in topological order at timeout,
        and by windowed operators when their window closes)."""

    def probe(self, tag: str = DEFAULT_PROBE_TAG) -> None:
        """Control-channel request for data, propagated parent -> child.

        The default implementation just records the request; stateful
        operators override it to set up per-probe state on the heap.
        Sources respond to probes by beginning to push tuples upward.
        """

    # -- dataflow ------------------------------------------------------------ #
    def receive(self, tup: Tuple, slot: int = 0, tag: str = DEFAULT_PROBE_TAG) -> None:
        """Data-channel entry point: a child pushed ``tup`` into ``slot``."""
        if self._stopped:
            return
        self.stats.tuples_in += 1
        try:
            self.on_receive(tup, slot, tag)
        except MalformedTupleError:
            # Best-effort policy (Section 3.3.4): drop tuples that do not
            # match the query's expectations.
            self.stats.tuples_dropped += 1
        except (TypeError, KeyError):
            self.stats.tuples_dropped += 1

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        raise NotImplementedError

    def emit(self, tup: Tuple, tag: str = DEFAULT_PROBE_TAG) -> None:
        """Push ``tup`` to every downstream consumer."""
        if self._stopped:
            return
        self.stats.tuples_out += 1
        for parent, slot in self._parents:
            parent.receive(tup, slot, tag)


_OPERATOR_REGISTRY: Dict[str, Type[PhysicalOperator]] = {}


def register_operator(cls: Type[PhysicalOperator]) -> Type[PhysicalOperator]:
    """Class decorator adding a physical operator to the plan-time registry."""
    if not cls.op_type or cls.op_type == "abstract":
        raise ValueError(f"{cls.__name__} must define a concrete op_type")
    _OPERATOR_REGISTRY[cls.op_type] = cls
    return cls


def build_operator(spec: OperatorSpec, context: ExecutionContext) -> PhysicalOperator:
    """Instantiate the physical operator named by ``spec.op_type``."""
    try:
        cls = _OPERATOR_REGISTRY[spec.op_type]
    except KeyError as exc:
        raise ValueError(f"unknown operator type {spec.op_type!r}") from exc
    return cls(spec, context)


def registered_operator_types() -> List[str]:
    return sorted(_OPERATOR_REGISTRY)
