"""Control-flow manager (paper Section 3.3.4/3.3.5).

The control-flow manager sits at the root of an opgraph and drives its
control channel: it issues the initial probe when the opgraph starts, can
re-probe periodically for continuous queries, and coordinates the flush of
stateful operators when a probe's answer set should be considered complete
(PIER has no EOFs — timeouts and explicit probes bound the dataflow).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.qp.operators.base import DEFAULT_PROBE_TAG, PhysicalOperator, register_operator
from repro.qp.tuples import Tuple


@register_operator
class ControlFlowManager(PhysicalOperator):
    """Drive probes through the opgraph and pass data through unchanged.

    Params: ``reprobe_interval`` (seconds; 0/None means probe only once at
    start-up), ``probe_targets`` is wired by the executor to the opgraph's
    source operators.
    """

    op_type = "control"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.reprobe_interval: Optional[float] = self.param("reprobe_interval")
        self.probes_issued = 0
        self._children: List[PhysicalOperator] = []

    def register_child(self, child: PhysicalOperator) -> None:
        """The executor wires every operator below this one for probing."""
        self._children.append(child)

    def start(self) -> None:
        self._probe_children()
        if self.reprobe_interval:
            self.arm_timer(self.reprobe_interval, self._reprobe)

    def _reprobe(self, _data: object) -> None:
        if self._stopped:
            return
        self._probe_children()
        if self.reprobe_interval:
            self.arm_timer(self.reprobe_interval, self._reprobe)

    def _probe_children(self) -> None:
        self.probes_issued += 1
        tag = f"{DEFAULT_PROBE_TAG}-{self.probes_issued}"
        for child in self._children:
            child.probe(tag)

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        self.emit(tup, tag)
