"""Eddy: adaptive tuple routing among commutative operators (Section 4.2.2).

PIER includes a prototype eddy that can be wired into a UFL plan.  The eddy
intercepts tuples and routes each one through a set of member operators in
an adaptively chosen order.  The routing policy implemented here is the
classic lottery/backpressure-flavoured policy: operators that drop more
tuples (low selectivity-pass rate) and respond cheaply are favoured early
in the ordering, so expensive or unselective work is deferred.

The member operators are *selection-like*: they either pass a (possibly
modified) tuple or drop it.  Each tuple carries a "done" set so it visits
every member exactly once, as in the original eddies paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.qp.expressions import matches
from repro.runtime.rand import derive_rng
from repro.qp.operators.base import PhysicalOperator, register_operator
from repro.qp.tuples import Tuple


@dataclass
class EddyMemberStats:
    """Observations the routing policy keeps per member operator."""

    seen: int = 0
    passed: int = 0
    cost: float = 1.0

    @property
    def selectivity(self) -> float:
        """Fraction of tuples that survive this member (1.0 before data)."""
        if self.seen == 0:
            return 1.0
        return self.passed / self.seen

    def ticket_weight(self) -> float:
        """Routing weight: favour members that kill tuples early and cheaply."""
        return (1.0 - self.selectivity + 0.05) / max(self.cost, 1e-6)


@register_operator
class Eddy(PhysicalOperator):
    """Adaptively order a set of predicate members per tuple.

    Params: ``members`` — a list of ``{"name":..., "predicate":...,
    "cost":...}`` entries; ``policy`` — "lottery" (default, adaptive) or
    "fixed" (the declared order, used as the non-adaptive baseline in the
    eddy ablation benchmark); ``seed`` for deterministic lotteries.
    """

    op_type = "eddy"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        members = self.require_param("members")
        self.member_names: List[str] = [member["name"] for member in members]
        self.predicates: Dict[str, Any] = {member["name"]: member["predicate"] for member in members}
        self.policy: str = self.param("policy", "lottery")
        self.member_stats: Dict[str, EddyMemberStats] = {
            member["name"]: EddyMemberStats(cost=float(member.get("cost", 1.0)))
            for member in members
        }
        self._rng = derive_rng(self.param("seed", 0))
        self.evaluations = 0

    # -- routing policy --------------------------------------------------- #
    def _choose_order(self) -> List[str]:
        if self.policy == "fixed":
            return list(self.member_names)
        # Lottery scheduling: sample members without replacement with
        # probability proportional to their ticket weight.
        remaining = list(self.member_names)
        order: List[str] = []
        while remaining:
            weights = [self.member_stats[name].ticket_weight() for name in remaining]
            total = sum(weights)
            pick = self._rng.uniform(0.0, total)
            cumulative = 0.0
            chosen_index = len(remaining) - 1
            for index, weight in enumerate(weights):
                cumulative += weight
                if pick <= cumulative:
                    chosen_index = index
                    break
            order.append(remaining.pop(chosen_index))
        return order

    # -- dataflow ------------------------------------------------------------ #
    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        for name in self._choose_order():
            stats = self.member_stats[name]
            stats.seen += 1
            self.evaluations += 1
            if matches(self.predicates[name], tup):
                stats.passed += 1
            else:
                return
        self.emit(tup, tag)
