"""Dataflow plumbing operators: put (exchange), queue, and result handler.

``put`` is PIER's analogue of the Exchange operator [Graefe 90]: it
repartitions tuples across the network by publishing them into a DHT
namespace keyed on chosen columns, where the consumer opgraph picks them up
with a ``dht_scan`` access method.  ``queue`` breaks the local call stack
so dataflow "comes up for air" and yields to the Main Scheduler.  The
result handler ships answer tuples to the query's proxy node.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple as PyTuple

from repro.overlay.naming import random_suffix
from repro.qp.operators.base import DEFAULT_PROBE_TAG, PhysicalOperator, register_operator
from repro.qp.tuples import Tuple

RESULT_NAMESPACE = "__results__"


@register_operator
class PutExchange(PhysicalOperator):
    """Publish each input tuple into the DHT, partitioned by key columns.

    This is the "rehash" phase of parallel hash joins and multi-phase
    aggregation: a tuple's partitioning key decides which node receives it.
    Params: ``namespace`` (rendezvous, query-scoped by default),
    ``key_columns``, optional ``lifetime``, ``use_send`` (route the object
    hop-by-hop with upcalls — required for hierarchical operators — instead
    of the two-phase put), ``scoped`` (default True).
    """

    op_type = "put"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        namespace = self.require_param("namespace")
        self.namespace = (
            context.scoped_namespace(namespace) if self.param("scoped", True) else namespace
        )
        self.key_columns: List[str] = list(self.require_param("key_columns"))
        self.lifetime = float(self.param("lifetime", context.lifetime))
        self.use_send = bool(self.param("use_send", False))
        self.tuples_published = 0

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        key = tup.key(self.key_columns)
        partition_key = key[0] if len(key) == 1 else key
        self.tuples_published += 1
        if self.use_send:
            self.context.overlay.send(
                self.namespace, partition_key, random_suffix(), tup.to_dict(), self.lifetime
            )
        else:
            self.context.overlay.put(
                self.namespace, partition_key, random_suffix(), tup.to_dict(), self.lifetime
            )


@register_operator
class Queue(PhysicalOperator):
    """Decouple producer and consumer: buffered tuples are re-injected from
    a zero-delay timer event, unwinding the producer's call stack
    (Section 3.3.5).
    Params: optional ``batch`` (tuples drained per scheduler event).
    """

    op_type = "queue"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self._buffer: Deque[PyTuple[Tuple, str]] = deque()
        self._drain_scheduled = False
        self.batch = int(self.param("batch", 64))

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        self._buffer.append((tup, tag))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.context.schedule(0.0, self._drain)

    def _drain(self, _data: object) -> None:
        self._drain_scheduled = False
        if self._stopped:
            self._buffer.clear()
            return
        for _ in range(min(self.batch, len(self._buffer))):
            tup, tag = self._buffer.popleft()
            self.emit(tup, tag)
        if self._buffer and not self._drain_scheduled:
            self._drain_scheduled = True
            self.context.schedule(0.0, self._drain)

    def flush(self) -> None:
        while self._buffer:
            tup, tag = self._buffer.popleft()
            self.emit(tup, tag)

    @property
    def depth(self) -> int:
        return len(self._buffer)


@register_operator
class ResultHandler(PhysicalOperator):
    """Forward answer tuples to the client's proxy node.

    When this node *is* the proxy, results are delivered through the
    context's ``deliver_result`` hook; otherwise they are sent directly to
    the proxy's address, tagged with the query id, optionally in batches.
    Params: optional ``batch`` (default 1), ``table`` (rename of results).
    """

    op_type = "result_handler"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.batch = int(self.param("batch", 1))
        self._pending: List[Tuple] = []
        self.results_shipped = 0

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        if self.param("table"):
            tup = tup.rename(self.param("table"))
        self._pending.append(tup)
        if len(self._pending) >= self.batch:
            self._ship()

    def flush(self) -> None:
        self._ship()

    def _ship(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.results_shipped += len(batch)
        if (
            self.context.deliver_result is not None
            and self.context.proxy_address == self.context.overlay.address
        ):
            for tup in batch:
                self.context.deliver_result(tup)
            return
        self.context.overlay.direct_message(
            self.context.proxy_address,
            namespace=RESULT_NAMESPACE,
            key=self.context.query_id,
            value=[tup.to_dict() for tup in batch],
        )
