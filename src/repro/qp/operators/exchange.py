"""Dataflow plumbing operators: put (exchange), queue, and result handler.

``put`` is PIER's analogue of the Exchange operator [Graefe 90]: it
repartitions tuples across the network by publishing them into a DHT
namespace keyed on chosen columns, where the consumer opgraph picks them up
with a ``dht_scan`` access method.  ``queue`` breaks the local call stack
so dataflow "comes up for air" and yields to the Main Scheduler.  The
result handler ships answer tuples to the query's proxy node.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple as PyTuple

from repro.overlay.naming import random_suffix
from repro.qp.operators.base import DEFAULT_PROBE_TAG, PhysicalOperator, register_operator
from repro.qp.tuples import Tuple
from repro.runtime.sizing import estimate_message_size

RESULT_NAMESPACE = "__results__"


class _StragglerFlushTimer:
    """Shared straggler-timer behaviour for buffering operators.

    Keeps at most one pending flush callback: :meth:`_arm_flush_timer`
    schedules it, and when it fires the operator's ``flush()`` ships
    whatever is buffered (or, after teardown, :meth:`_discard_buffered`
    drops it).  Mixed into operators that also derive from
    :class:`PhysicalOperator` (which supplies ``context``, ``flush`` and
    ``_stopped``).
    """

    flush_interval: float = 0.0
    _flush_timer_scheduled: bool = False

    def _arm_flush_timer(self) -> None:
        if self.flush_interval > 0 and not self._flush_timer_scheduled:
            self._flush_timer_scheduled = True
            self.arm_timer(self.flush_interval, self._on_flush_timer)

    def _on_flush_timer(self, _data: object) -> None:
        self._flush_timer_scheduled = False
        if self._stopped:
            self._discard_buffered()
            return
        self.flush()

    def stop(self) -> None:
        """Discard buffered tuples and disarm the straggler timer.

        A cancelled query must stop generating network traffic immediately:
        without this, tuples buffered at cancel time would be shipped by a
        later ``flush()`` call (or sit armed behind ``_flush_timer_scheduled``
        forever), leaking post-cancel ``put_batch`` traffic onto the DHT.
        """
        super().stop()
        self._discard_buffered()
        self._flush_timer_scheduled = False

    def _discard_buffered(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


@register_operator
class PutExchange(_StragglerFlushTimer, PhysicalOperator):
    """Publish each input tuple into the DHT, partitioned by key columns.

    This is the "rehash" phase of parallel hash joins and multi-phase
    aggregation: a tuple's partitioning key decides which node receives it.

    With batching enabled, same-destination tuples (same partitioning key)
    are coalesced and shipped in one ``put_batch`` message per flush — one
    DHT lookup and one direct message carry a whole batch instead of one
    message per tuple.  A partition flushes when it reaches ``batch_size``
    tuples and a periodic timer flushes stragglers every
    ``flush_interval`` seconds; query teardown flushes whatever remains.

    Params: ``namespace`` (rendezvous, query-scoped by default),
    ``key_columns``, optional ``lifetime``, ``use_send`` (route the object
    hop-by-hop with upcalls — required for hierarchical operators — instead
    of the two-phase put; never batched), ``scoped`` (default True),
    ``batch_size`` and ``flush_interval`` (defaults come from the execution
    context's ``exchange_batch_size`` / ``exchange_flush_interval`` extras,
    i.e. the deployment-level knobs; a batch size of 1 disables batching).
    """

    op_type = "put"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        namespace = self.require_param("namespace")
        self.namespace = (
            context.scoped_namespace(namespace) if self.param("scoped", True) else namespace
        )
        self.key_columns: List[str] = list(self.require_param("key_columns"))
        self.lifetime = float(self.param("lifetime", context.lifetime))
        self.use_send = bool(self.param("use_send", False))
        self.batch_size = int(
            self.param("batch_size", context.extras.get("exchange_batch_size", 1))
        )
        self.flush_interval = float(
            self.param("flush_interval", context.extras.get("exchange_flush_interval", 0.25))
        )
        if self.batch_size > 1 and self.flush_interval <= 0:
            # Without a straggler timer, partitions below batch_size would
            # only flush at teardown — after consumer graphs have stopped —
            # and their tuples would be lost.  Batching always keeps a timer.
            self.flush_interval = 0.25
        self.tuples_published = 0
        self.batches_published = 0
        # EXPLAIN ANALYZE actuals: network messages this operator caused
        # (always counted — one int add) and their estimated wire bytes
        # (only measured for traced queries; sizing costs real work).
        self.messages_shipped = 0
        self.bytes_shipped = 0
        self._buffers: Dict[Any, List[Any]] = {}

    def _note_shipped(self, payload: Any) -> None:
        self.messages_shipped += 1
        if self._obs is not None:
            self.bytes_shipped += estimate_message_size(payload)

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        key = tup.key(self.key_columns)
        partition_key = key[0] if len(key) == 1 else key
        self.tuples_published += 1
        if self.use_send:
            wire = tup.to_wire()
            self._note_shipped(wire)
            self.context.overlay.send(
                self.namespace, partition_key, random_suffix(), wire, self.lifetime
            )
            return
        if self.batch_size <= 1:
            wire = tup.to_wire()
            self._note_shipped(wire)
            self.context.overlay.put(
                self.namespace, partition_key, random_suffix(), wire, self.lifetime
            )
            return
        bucket = self._buffers.setdefault(partition_key, [])
        bucket.append(tup.to_wire())
        if len(bucket) >= self.batch_size:
            self._flush_partition(partition_key)
        else:
            self._arm_flush_timer()

    def _discard_buffered(self) -> None:
        self._buffers.clear()

    def _flush_partition(self, partition_key: Any) -> None:
        values = self._buffers.pop(partition_key, None)
        if not values:
            return
        self.batches_published += 1
        self.messages_shipped += 1
        if self._obs is not None:
            self.bytes_shipped += estimate_message_size(values)
        self.context.overlay.put_batch(
            self.namespace,
            partition_key,
            [(random_suffix(), value) for value in values],
            self.lifetime,
        )

    def flush(self) -> None:
        if self._stopped:
            self._discard_buffered()
            return
        for partition_key in list(self._buffers):
            self._flush_partition(partition_key)

    @property
    def buffered(self) -> int:
        return sum(len(bucket) for bucket in self._buffers.values())

    def residual_buffered(self) -> int:
        return self.buffered


@register_operator
class Queue(PhysicalOperator):
    """Decouple producer and consumer: buffered tuples are re-injected from
    a zero-delay timer event, unwinding the producer's call stack
    (Section 3.3.5).
    Params: optional ``batch`` (tuples drained per scheduler event).
    """

    op_type = "queue"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self._buffer: Deque[PyTuple[Tuple, str]] = deque()
        self._drain_scheduled = False
        self.batch = int(self.param("batch", 64))

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        self._buffer.append((tup, tag))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.arm_timer(0.0, self._drain)

    def _drain(self, _data: object) -> None:
        self._drain_scheduled = False
        if self._stopped:
            self._buffer.clear()
            return
        for _ in range(min(self.batch, len(self._buffer))):
            tup, tag = self._buffer.popleft()
            self.emit(tup, tag)
        if self._buffer and not self._drain_scheduled:
            self._drain_scheduled = True
            self.arm_timer(0.0, self._drain)

    def flush(self) -> None:
        while self._buffer:
            tup, tag = self._buffer.popleft()
            self.emit(tup, tag)

    def stop(self) -> None:
        # Teardown drops whatever a pending drain would have re-injected;
        # the drain timer itself is cancelled by the base stop().
        super().stop()
        self._buffer.clear()
        self._drain_scheduled = False

    @property
    def depth(self) -> int:
        return len(self._buffer)

    def residual_buffered(self) -> int:
        return len(self._buffer)


@register_operator
class ResultHandler(_StragglerFlushTimer, PhysicalOperator):
    """Forward answer tuples to the client's proxy node.

    When this node *is* the proxy, results are delivered through the
    context's ``deliver_result`` hook; otherwise they are sent directly to
    the proxy's address, tagged with the query id, optionally in batches.
    Params: optional ``batch`` (default 1), ``table`` (rename of results),
    ``flush_interval`` (seconds; default from the execution context's
    ``result_flush_interval`` extra, 0 disables).  A flush interval ships
    partially filled batches periodically, so sparse per-node results reach
    the client stream long before the query-timeout flush — streaming
    sessions (``PIERNetwork.stream``) turn it on through plan metadata.
    """

    op_type = "result_handler"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.batch = int(self.param("batch", 1))
        self.flush_interval = float(
            self.param("flush_interval", context.extras.get("result_flush_interval", 0.0))
        )
        self._pending: List[Tuple] = []
        self.results_shipped = 0
        self.messages_shipped = 0
        self.bytes_shipped = 0

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        if self.param("table"):
            tup = tup.rename(self.param("table"))
        self._pending.append(tup)
        if len(self._pending) >= self.batch:
            self._ship()
        else:
            self._arm_flush_timer()

    def _discard_buffered(self) -> None:
        self._pending.clear()

    def residual_buffered(self) -> int:
        return len(self._pending)

    def flush(self) -> None:
        self._ship()

    def _ship(self) -> None:
        if self._stopped:
            self._pending.clear()
            return
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.results_shipped += len(batch)
        if (
            self.context.deliver_result is not None
            and self.context.proxy_address == self.context.overlay.address
        ):
            for tup in batch:
                self.context.deliver_result(tup)
            return
        wire = [tup.to_wire() for tup in batch]
        self.messages_shipped += 1
        if self._obs is not None:
            self.bytes_shipped += estimate_message_size(wire)
        self.context.overlay.direct_message(
            self.context.proxy_address,
            namespace=RESULT_NAMESPACE,
            key=self.context.query_id,
            value=wire,
        )
