"""Access methods: the sources of every opgraph (paper Section 3.3.1).

Access methods contact a data source (the internal DHT, node-local tables,
or a stream), convert items into PIER's self-describing tuple format, and
inject them into the dataflow.  Type inference/conversion happens here;
type *checking* is deferred to downstream operators.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.qp.operators.base import (
    DEFAULT_PROBE_TAG,
    ExecutionContext,
    PhysicalOperator,
    register_operator,
)
from repro.qp.opgraph import OperatorSpec
from repro.qp.tuples import MalformedTupleError, Tuple


def _coerce_tuple(table: str, value: Any) -> Optional[Tuple]:
    """Convert a stored object into a tuple, best-effort.

    Interned wire tuples pass through zero-copy; the legacy
    ``{"table", "values"}`` dict form is rebuilt; a bare mapping becomes a
    tuple of ``table``."""
    if isinstance(value, Tuple):
        return value
    if isinstance(value, dict):
        if "table" in value and "values" in value:
            try:
                return Tuple.from_wire(value)
            except MalformedTupleError:
                return None
        return Tuple(table, value)
    return None


@register_operator
class DHTScanAccess(PhysicalOperator):
    """Scan a DHT namespace at this node: existing objects via ``localScan``
    plus newly arriving ones via ``newData`` (Table 2's intra-node calls).

    Params: ``namespace`` (table name), optional ``scoped`` (default False:
    the namespace is a base table; True: it is a query-private rendezvous
    namespace such as the output of a ``put`` operator).
    """

    op_type = "dht_scan"

    def __init__(self, spec: OperatorSpec, context: ExecutionContext) -> None:
        super().__init__(spec, context)
        self.namespace = self.require_param("namespace")
        if self.param("scoped", False):
            self.namespace = context.scoped_namespace(self.namespace)
        self.table = self.param("table", self.require_param("namespace"))

    def start(self) -> None:
        self.context.overlay.new_data(self.namespace, self._on_new_data)

    def probe(self, tag: str = DEFAULT_PROBE_TAG) -> None:
        self.context.overlay.local_scan(
            self.namespace, lambda _ns, _key, value: self._inject(value, tag)
        )

    def _on_new_data(self, _namespace: str, _key: object, value: object) -> None:
        self._inject(value, DEFAULT_PROBE_TAG)

    def _inject(self, value: object, tag: str) -> None:
        tup = _coerce_tuple(self.table, value)
        if tup is None:
            self.stats.tuples_dropped += 1
            return
        self.emit(tup, tag)

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        raise MalformedTupleError("access methods have no inputs")


@register_operator
class DHTGetAccess(PhysicalOperator):
    """Equality-predicate access: fetch all objects published under one
    partitioning-key value with a DHT ``get`` (a distributed index lookup).

    Params: ``namespace``, ``key``.
    """

    op_type = "dht_get"

    def __init__(self, spec: OperatorSpec, context: ExecutionContext) -> None:
        super().__init__(spec, context)
        self.namespace = self.require_param("namespace")
        if self.param("scoped", False):
            self.namespace = context.scoped_namespace(self.namespace)
        self.key = self.require_param("key")
        self.table = self.param("table", self.require_param("namespace"))

    def probe(self, tag: str = DEFAULT_PROBE_TAG) -> None:
        def on_get(_namespace: str, _key: object, objects: List[object]) -> None:
            for value in objects:
                tup = _coerce_tuple(self.table, value)
                if tup is None:
                    self.stats.tuples_dropped += 1
                    continue
                self.emit(tup, tag)

        self.context.overlay.get(self.namespace, self.key, on_get)

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        raise MalformedTupleError("access methods have no inputs")


@register_operator
class LocalTableAccess(PhysicalOperator):
    """Scan a node-local, in-memory table registered with the executor.

    This is how per-node data sources such as firewall logs or packet
    traces enter the dataflow: each node holds only its own rows.  Like
    the DHT scan (localScan + newData), the operator is *live*: rows
    appended to the table while the opgraph runs are pushed into the
    dataflow, so standing (continuous) queries see data published after
    dissemination.  Params: ``table``, optional ``follow`` (default True;
    False restores the snapshot-only scan).
    """

    op_type = "local_table"

    def __init__(self, spec: OperatorSpec, context: ExecutionContext) -> None:
        super().__init__(spec, context)
        self.table = self.require_param("table")
        self.follow = bool(self.param("follow", True))
        self._unsubscribe: Optional[Callable[[], None]] = None

    def _rows(self) -> Iterable[Tuple]:
        tables = self.context.extras.get("local_tables", {})
        return tables.get(self.table, [])

    def start(self) -> None:
        if not self.follow:
            return
        subscribe = self.context.extras.get("subscribe_local_table")
        if subscribe is not None:
            self._unsubscribe = subscribe(self.table, self._on_rows_appended)

    def stop(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        super().stop()

    def probe(self, tag: str = DEFAULT_PROBE_TAG) -> None:
        self._emit_rows(self._rows(), tag)

    def _on_rows_appended(self, rows: List[Tuple]) -> None:
        if not self._stopped:
            self._emit_rows(rows, DEFAULT_PROBE_TAG)

    def _emit_rows(self, rows: Iterable[Tuple], tag: str) -> None:
        for tup in list(rows):
            coerced = tup if isinstance(tup, Tuple) else _coerce_tuple(self.table, tup)
            if coerced is None:
                self.stats.tuples_dropped += 1
                continue
            self.emit(coerced, tag)

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        raise MalformedTupleError("access methods have no inputs")


@register_operator
class StreamAccess(PhysicalOperator):
    """A push-based streaming source driven by timers.

    A generator callable registered under ``extras['streams'][name]`` is
    polled every ``interval`` seconds; each call may return zero or more
    tuples which are injected into the dataflow.  This models continuously
    arriving monitoring data.
    Params: ``stream`` (name), ``interval`` (seconds, default 1.0).
    """

    op_type = "stream_source"

    def __init__(self, spec: OperatorSpec, context: ExecutionContext) -> None:
        super().__init__(spec, context)
        self.stream_name = self.require_param("stream")
        self.interval = float(self.param("interval", 1.0))
        self._active = False

    def start(self) -> None:
        self._active = True
        self.arm_timer(self.interval, self._tick)

    def stop(self) -> None:
        self._active = False
        super().stop()

    def _tick(self, _data: object) -> None:
        if not self._active or self._stopped:
            return
        producer = self.context.extras.get("streams", {}).get(self.stream_name)
        if producer is not None:
            for item in producer(self.context.now):
                tup = item if isinstance(item, Tuple) else _coerce_tuple(self.stream_name, item)
                if tup is None:
                    self.stats.tuples_dropped += 1
                    continue
                self.emit(tup)
        self.arm_timer(self.interval, self._tick)

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        raise MalformedTupleError("access methods have no inputs")
