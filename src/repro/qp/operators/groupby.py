"""Group-by / aggregation operators (paper Section 3.3.4).

``groupby_hash`` keeps one mergeable partial state per group (see
:mod:`repro.qp.aggregates`) and emits on flush or on a periodic window for
continuous queries.  ``partial_aggregate`` emits partial states (rather
than final results) so that they can be combined downstream — either by a
rehash exchange (flat multi-phase aggregation) or by the hierarchical
aggregation tree of :mod:`repro.qp.hierarchical`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple as PyTuple

from repro.qp.aggregates import AggregateFunction, AggregateSpec, make_aggregate
from repro.qp.operators.base import PhysicalOperator, register_operator
from repro.qp.tuples import Tuple


def parse_aggregate_specs(raw_specs: List[Any]) -> List[AggregateSpec]:
    """Normalise plan-level aggregate descriptions into AggregateSpec objects.

    Accepted forms: ``AggregateSpec`` instances, ``(function, column,
    output)`` triples, or dicts with ``function``/``column``/``output`` and
    optional ``params``.
    """
    specs: List[AggregateSpec] = []
    for raw in raw_specs:
        if isinstance(raw, AggregateSpec):
            specs.append(raw)
        elif isinstance(raw, dict):
            specs.append(
                AggregateSpec(
                    function=raw["function"],
                    column=raw.get("column"),
                    output=raw.get("output", raw["function"]),
                    params=tuple(sorted(raw.get("params", {}).items())),
                )
            )
        else:
            function, column, output = raw
            specs.append(AggregateSpec(function=function, column=column, output=output))
    return specs


class _GroupState:
    """Aggregate partial states for one group key."""

    def __init__(self, functions: List[AggregateFunction]) -> None:
        self.functions = functions
        self.states: List[Any] = [function.initial() for function in functions]

    def add(self, values: List[Any]) -> None:
        self.states = [
            function.add(state, value)
            for function, state, value in zip(self.functions, self.states, values)
        ]

    def merge_states(self, other_states: List[Any]) -> None:
        self.states = [
            function.merge(state, other)
            for function, state, other in zip(self.functions, self.states, other_states)
        ]

    def results(self) -> List[Any]:
        return [function.result(state) for function, state in zip(self.functions, self.states)]


class _BaseGroupBy(PhysicalOperator):
    """Shared machinery for the group-by variants."""

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.group_columns: List[str] = list(self.param("group_columns", []))
        self.aggregate_specs = parse_aggregate_specs(self.require_param("aggregates"))
        self.output_table: str = self.param("output_table", "aggregate")
        self.window: Optional[float] = self.param("window")
        self._groups: Dict[PyTuple[Any, ...], _GroupState] = {}
        self._window_scheduled = False

    def start(self) -> None:
        if self.window:
            self._schedule_window()

    def _schedule_window(self) -> None:
        if self._stopped:
            return
        self.context.schedule(self.window, self._on_window)

    def _on_window(self, _data: object) -> None:
        if self._stopped:
            return
        self.flush()
        self._groups.clear()
        self._schedule_window()

    def _state_for(self, key: PyTuple[Any, ...]) -> _GroupState:
        state = self._groups.get(key)
        if state is None:
            state = _GroupState([spec.build() for spec in self.aggregate_specs])
            self._groups[key] = state
        return state

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        key = tup.key(self.group_columns) if self.group_columns else ()
        values = [
            tup.require(spec.column) if spec.column is not None else None
            for spec in self.aggregate_specs
        ]
        self._state_for(key).add(values)

    def _group_tuple(self, key: PyTuple[Any, ...], payload: Dict[str, Any]) -> Tuple:
        values = dict(zip(self.group_columns, key))
        values.update(payload)
        return Tuple(self.output_table, values)

    @property
    def group_count(self) -> int:
        return len(self._groups)


@register_operator
class HashGroupBy(_BaseGroupBy):
    """Final aggregation: emits one result tuple per group on flush/window.

    Params: ``group_columns``, ``aggregates``, optional ``output_table``,
    ``window`` (seconds, for continuous queries).
    """

    op_type = "groupby_hash"

    def flush(self) -> None:
        for key, state in self._groups.items():
            payload = {
                spec.output: result
                for spec, result in zip(self.aggregate_specs, state.results())
            }
            self.emit(self._group_tuple(key, payload))


@register_operator
class PartialAggregate(_BaseGroupBy):
    """Local (per-node) aggregation step of a multi-phase aggregate.

    On flush it emits *partial state* tuples — one per group — carrying the
    mergeable states rather than final values, so a downstream
    ``merge_aggregate`` (after a rehash, or at an aggregation-tree parent)
    can combine them.
    """

    op_type = "partial_aggregate"

    def flush(self) -> None:
        for key, state in self._groups.items():
            self.emit(
                self._group_tuple(
                    key,
                    {
                        "__partial_states__": list(state.states),
                        "__group_key__": tuple(key),
                    },
                )
            )


@register_operator
class MergeAggregate(_BaseGroupBy):
    """Combine partial-state tuples produced by :class:`PartialAggregate`.

    Accepts both partial-state tuples (merged) and raw tuples (folded), so
    it can sit at the top of either a rehash exchange or a local pipeline.
    """

    op_type = "merge_aggregate"

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        if "__partial_states__" in tup:
            key = tuple(tup.require("__group_key__")) if self.group_columns else ()
            self._state_for(key).merge_states(tup.require("__partial_states__"))
        else:
            super().on_receive(tup, slot, tag)

    def flush(self) -> None:
        for key, state in self._groups.items():
            payload = {
                spec.output: result
                for spec, result in zip(self.aggregate_specs, state.results())
            }
            self.emit(self._group_tuple(key, payload))
