"""Group-by / aggregation operators (paper Section 3.3.4).

``groupby_hash`` keeps one mergeable partial state per group (see
:mod:`repro.qp.aggregates`) and emits on flush or on a periodic window for
continuous queries.  ``partial_aggregate`` emits partial states (rather
than final results) so that they can be combined downstream — either by a
rehash exchange (flat multi-phase aggregation) or by the hierarchical
aggregation tree of :mod:`repro.qp.hierarchical`.

Two window mechanisms coexist:

* the legacy ``window`` param (a period in seconds) re-emits periodically
  with emit-then-reset semantics — each period reports only the tuples
  that arrived during it, and the group table is cleared so long-running
  aggregates neither grow without bound nor double-report;
* the continuous-query ``window_spec`` param (see
  :mod:`repro.cq.windows`) keeps *time-indexed* group state: tuples fold
  into panes by arrival time, each closing epoch merges the panes its
  window covers (tumbling / sliding / landmark), emitted rows carry epoch
  stamps, and panes no future window needs are evicted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple as PyTuple

from repro.cq.windows import EPOCH_COLUMN, LATE_EPOCH_SETTLE, WindowSpec, epoch_stamp
from repro.qp.aggregates import AggregateFunction, AggregateSpec, make_aggregate
from repro.qp.operators.base import PhysicalOperator, register_operator
from repro.qp.tuples import Tuple


def parse_aggregate_specs(raw_specs: List[Any]) -> List[AggregateSpec]:
    """Normalise plan-level aggregate descriptions into AggregateSpec objects.

    Accepted forms: ``AggregateSpec`` instances, ``(function, column,
    output)`` triples, or dicts with ``function``/``column``/``output`` and
    optional ``params``.
    """
    specs: List[AggregateSpec] = []
    for raw in raw_specs:
        if isinstance(raw, AggregateSpec):
            specs.append(raw)
        elif isinstance(raw, dict):
            specs.append(
                AggregateSpec(
                    function=raw["function"],
                    column=raw.get("column"),
                    output=raw.get("output", raw["function"]),
                    params=tuple(sorted(raw.get("params", {}).items())),
                )
            )
        else:
            function, column, output = raw
            specs.append(AggregateSpec(function=function, column=column, output=output))
    return specs


class _GroupState:
    """Aggregate partial states for one group key."""

    def __init__(self, functions: List[AggregateFunction]) -> None:
        self.functions = functions
        self.states: List[Any] = [function.initial() for function in functions]

    def add(self, values: List[Any]) -> None:
        self.states = [
            function.add(state, value)
            for function, state, value in zip(self.functions, self.states, values)
        ]

    def merge_states(self, other_states: List[Any]) -> None:
        self.states = [
            function.merge(state, other)
            for function, state, other in zip(self.functions, self.states, other_states)
        ]

    def results(self) -> List[Any]:
        return [function.result(state) for function, state in zip(self.functions, self.states)]


class _BaseGroupBy(PhysicalOperator):
    """Shared machinery for the group-by variants."""

    # Whether this operator drives windowed emission off the pane clock.
    # Merge sites override this: their epochs close on watermarks driven
    # by the epoch stamps of arriving partials, not on local pane closes.
    _uses_pane_timer = True

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.group_columns: List[str] = list(self.param("group_columns", []))
        self.aggregate_specs = parse_aggregate_specs(self.require_param("aggregates"))
        self.output_table: str = self.param("output_table", "aggregate")
        self.window: Optional[float] = self.param("window")
        self.window_spec: Optional[WindowSpec] = WindowSpec.from_params(
            self.param("window_spec")
        )
        # Shared plans (repro.cq.sharing) ask merge sites for mergeable
        # partial-state rows instead of final values so subscribers can
        # re-assemble epochs at their own slides client-side.
        self.emit_states = bool(self.param("emit_states", False))
        # Merge functions are stateless combiners shared by every merge on
        # this node (building them per merge was hot-path waste).
        self._merge_functions = [spec.build() for spec in self.aggregate_specs]
        self._groups: Dict[PyTuple[Any, ...], _GroupState] = {}
        # Time-indexed state: pane index -> group key -> state.  Pane
        # boundaries are aligned to absolute virtual time (repro.cq.windows)
        # so every node agrees on them without coordination.
        self._panes: Dict[int, Dict[PyTuple[Any, ...], _GroupState]] = {}
        self._landmark_cum: Dict[PyTuple[Any, ...], List[Any]] = {}
        self._next_close_epoch: Optional[int] = None
        self._window_scheduled = False
        self.epochs_emitted = 0
        self.panes_evicted = 0

    def start(self) -> None:
        if self.window_spec is not None:
            if self._uses_pane_timer:
                self._arm_pane_timer()
        elif self.window:
            self._schedule_window()

    # -- legacy periodic window (emit-then-reset) --------------------------- #
    def _schedule_window(self) -> None:
        if self._stopped:
            return
        self.arm_timer(self.window, self._on_window)

    def _on_window(self, _data: object) -> None:
        if self._stopped:
            return
        # Emit-then-reset: each period reports only its own arrivals.  The
        # one-shot flush() at query teardown is unchanged — it ships
        # whatever accumulated since the last period.
        self.flush()
        self._groups.clear()
        self._schedule_window()

    # -- pane clock (continuous queries) --------------------------------------- #
    def _arm_pane_timer(self) -> None:
        if self._stopped:
            return
        spec = self.window_spec
        if self._next_close_epoch is None:
            # A node may install the opgraph mid-pane (dissemination delay,
            # rejoin re-install): it starts contributing with the pane in
            # progress and closes it at the absolute boundary.
            self._next_close_epoch = spec.pane_of(self.context.now)
        delay = max(spec.epoch_end(self._next_close_epoch) - self.context.now, 0.0)
        self.arm_timer(delay, self._on_pane_close)

    def _on_pane_close(self, _data: object) -> None:
        if self._stopped:
            return
        epoch = self._next_close_epoch
        self._next_close_epoch = epoch + 1
        states = self._window_states(epoch)
        if states:
            self._emit_window(epoch, states)
        self._arm_pane_timer()

    def _window_states(
        self, epoch: int
    ) -> Dict[PyTuple[Any, ...], List[Any]]:
        """Merge the panes epoch ``epoch`` covers and evict dead panes."""
        spec = self.window_spec
        if spec.landmark:
            pane = self._panes.pop(epoch, None)
            if pane:
                for key, state in pane.items():
                    self._merge_into(self._landmark_cum, key, state.states)
            return {key: list(states) for key, states in self._landmark_cum.items()}
        merged: Dict[PyTuple[Any, ...], List[Any]] = {}
        for pane_index in spec.epoch_panes(epoch):
            pane = self._panes.get(pane_index)
            if not pane:
                continue
            for key, state in pane.items():
                self._merge_into(merged, key, state.states)
        oldest_needed = spec.oldest_live_pane(epoch)
        for pane_index in [index for index in self._panes if index < oldest_needed]:
            del self._panes[pane_index]
            self.panes_evicted += 1
        return merged

    def _emit_window(
        self, epoch: int, states: Dict[PyTuple[Any, ...], List[Any]]
    ) -> None:
        """Ship one closed epoch downstream; final-row form by default."""
        if self.emit_states:
            self._emit_window_states(epoch, states)
            return
        stamp = epoch_stamp(self.window_spec, epoch)
        for key, state_list in states.items():
            payload = {
                spec.output: function.result(state)
                for spec, function, state in zip(
                    self.aggregate_specs, self._merge_functions, state_list
                )
            }
            payload.update(stamp)
            self.emit(self._group_tuple(key, payload))
        self.epochs_emitted += 1

    def _emit_window_states(
        self,
        epoch: int,
        states: Dict[PyTuple[Any, ...], List[Any]],
        contributors: Optional[int] = None,
    ) -> None:
        """Ship one closed epoch as mergeable partial-state rows.

        ``contributors`` — when the emitter can re-emit an epoch after an
        ownership handoff (hierarchical roots), it stamps each row with how
        many distinct sources were folded in, so downstream buffers can
        refuse to replace a more complete emission with a thinner one.
        """
        for key, state_list in states.items():
            payload = {
                "__partial_states__": list(state_list),
                "__group_key__": tuple(key),
                EPOCH_COLUMN: epoch,
            }
            if contributors is not None:
                payload["__contributors__"] = contributors
            self.emit(self._group_tuple(key, payload))
        self.epochs_emitted += 1

    # -- state access ------------------------------------------------------------ #
    def _merge_into(
        self,
        buffer: Dict[PyTuple[Any, ...], List[Any]],
        key: PyTuple[Any, ...],
        states: List[Any],
    ) -> None:
        existing = buffer.get(key)
        if existing is None:
            buffer[key] = list(states)
            return
        buffer[key] = [
            function.merge(left, right)
            for function, left, right in zip(self._merge_functions, existing, states)
        ]

    def _state_for(self, key: PyTuple[Any, ...]) -> _GroupState:
        state = self._groups.get(key)
        if state is None:
            state = _GroupState([spec.build() for spec in self.aggregate_specs])
            self._groups[key] = state
        return state

    def _pane_state(self, pane_index: int, key: PyTuple[Any, ...]) -> _GroupState:
        pane = self._panes.setdefault(pane_index, {})
        state = pane.get(key)
        if state is None:
            state = _GroupState([spec.build() for spec in self.aggregate_specs])
            pane[key] = state
        return state

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        key = tup.key(self.group_columns) if self.group_columns else ()
        values = [
            tup.require(spec.column) if spec.column is not None else None
            for spec in self.aggregate_specs
        ]
        if self.window_spec is not None and self._uses_pane_timer:
            pane_index = self.window_spec.pane_of(self.context.now)
            self._pane_state(pane_index, key).add(values)
        else:
            # Operators without a pane clock (watermark-driven merge
            # sites) fold raw tuples cumulatively, emitted at flush.
            self._state_for(key).add(values)

    def _group_tuple(self, key: PyTuple[Any, ...], payload: Dict[str, Any]) -> Tuple:
        values = dict(zip(self.group_columns, key))
        values.update(payload)
        return Tuple(self.output_table, values)

    @property
    def group_count(self) -> int:
        if self.window_spec is not None:
            keys = set(self._landmark_cum)
            for pane in self._panes.values():
                keys.update(pane)
            return len(keys)
        return len(self._groups)


@register_operator
class HashGroupBy(_BaseGroupBy):
    """Final aggregation: emits one result tuple per group on flush/window.

    Params: ``group_columns``, ``aggregates``, optional ``output_table``,
    ``window`` (seconds, emit-then-reset periodic emission) or
    ``window_spec`` (continuous-query window; emitted rows carry epoch
    stamps and panes outside the window are evicted).
    """

    op_type = "groupby_hash"

    def flush(self) -> None:
        # With a window spec, complete epochs were emitted at their pane
        # closes; the in-progress partial window is dropped by design (a
        # standing query only reports complete windows).
        for key, state in self._groups.items():
            payload = {
                spec.output: result
                for spec, result in zip(self.aggregate_specs, state.results())
            }
            self.emit(self._group_tuple(key, payload))


@register_operator
class PartialAggregate(_BaseGroupBy):
    """Local (per-node) aggregation step of a multi-phase aggregate.

    On flush it emits *partial state* tuples — one per group — carrying the
    mergeable states rather than final values, so a downstream
    ``merge_aggregate`` (after a rehash, or at an aggregation-tree parent)
    can combine them.  With a ``window_spec``, each closing epoch ships the
    window's partial states stamped with the epoch index, and the merge
    site recombines them per (epoch, group).
    """

    op_type = "partial_aggregate"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        # Byzantine role (repro.runtime.churn.ByzantineProcess).  NOTE the
        # threat-model caveat: corrupting one's *own* partial output is the
        # node lying about its local data — a bounded-influence residual no
        # aggregation protocol can detect (SIA's explicit non-goal).  The
        # hook exists so fault-injection experiments can measure exactly
        # that bound; the detectable attacks live on the aggregator paths
        # in repro.qp.hierarchical.
        adversary = getattr(context.overlay.runtime, "adversary", None)
        self._adversary = adversary
        self._attacker = adversary.role(context.overlay.address) if adversary else None

    def _attacked_states(
        self, states: Dict[PyTuple[Any, ...], List[Any]]
    ) -> Dict[PyTuple[Any, ...], List[Any]]:
        if self._attacker is None or not states:
            return states
        from repro.runtime.churn import corrupt_states

        attack = self._attacker.attack
        if attack == "drop_partials":
            self._adversary.record(self._attacker.address, attack)
            return {}
        if attack == "inflate_partials":
            self._adversary.record(self._attacker.address, attack)
            return {
                key: corrupt_states(st, self._attacker.inflation_factor)
                for key, st in states.items()
            }
        return states

    def _emit_window(
        self, epoch: int, states: Dict[PyTuple[Any, ...], List[Any]]
    ) -> None:
        self._emit_window_states(epoch, self._attacked_states(states))

    def flush(self) -> None:
        groups = {key: list(state.states) for key, state in self._groups.items()}
        for key, states in self._attacked_states(groups).items():
            self.emit(
                self._group_tuple(
                    key,
                    {
                        "__partial_states__": states,
                        "__group_key__": tuple(key),
                    },
                )
            )


@register_operator
class MergeAggregate(_BaseGroupBy):
    """Combine partial-state tuples produced by :class:`PartialAggregate`.

    Accepts both partial-state tuples (merged) and raw tuples (folded), so
    it can sit at the top of either a rehash exchange or a local pipeline.

    With a ``window_spec``, epoch-stamped partials are merged into
    per-epoch buckets; each epoch is emitted once its *watermark* passes
    (``epoch end + grace``, covering the partials' shipping latency) and
    its bucket is evicted.  Partials arriving for an already-emitted epoch
    are dropped and counted in ``late_partials``.
    """

    op_type = "merge_aggregate"

    # Epochs close on arriving partials' watermarks, not the pane clock.
    _uses_pane_timer = False

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self._epoch_states: Dict[int, Dict[PyTuple[Any, ...], _GroupState]] = {}
        self._epoch_timers: Set[int] = set()
        self._emitted_epochs: Set[int] = set()
        self.late_partials = 0

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        if "__partial_states__" in tup:
            epoch = tup.get(EPOCH_COLUMN)
            if self.window_spec is not None and epoch is not None:
                self._receive_epoch_partial(int(epoch), tup)
                return
            key = tuple(tup.require("__group_key__")) if self.group_columns else ()
            self._state_for(key).merge_states(tup.require("__partial_states__"))
        else:
            super().on_receive(tup, slot, tag)

    def _receive_epoch_partial(self, epoch: int, tup: Tuple) -> None:
        if epoch in self._emitted_epochs:
            self.late_partials += 1
            return
        key = tuple(tup.require("__group_key__")) if self.group_columns else ()
        bucket = self._epoch_states.setdefault(epoch, {})
        state = bucket.get(key)
        if state is None:
            state = _GroupState([spec.build() for spec in self.aggregate_specs])
            bucket[key] = state
        state.merge_states(tup.require("__partial_states__"))
        self._arm_epoch_timer(epoch)

    def _arm_epoch_timer(self, epoch: int) -> None:
        if epoch in self._epoch_timers:
            return
        self._epoch_timers.add(epoch)
        delay = self.window_spec.watermark(epoch) - self.context.now
        if delay <= 0:
            delay = LATE_EPOCH_SETTLE
        self.arm_timer(delay, self._on_epoch_watermark, data=epoch)

    def _on_epoch_watermark(self, epoch: int) -> None:
        self._epoch_timers.discard(epoch)
        if self._stopped:
            return
        self._close_epoch(epoch)

    def _close_epoch(self, epoch: int) -> None:
        bucket = self._epoch_states.pop(epoch, None)
        if not bucket or epoch in self._emitted_epochs:
            return
        self._emitted_epochs.add(epoch)
        self._emit_window(
            epoch, {key: list(state.states) for key, state in bucket.items()}
        )

    def flush(self) -> None:
        if self.window_spec is not None:
            # Lifetime expiry: ship the epochs still waiting on their
            # watermark so the final windows are not lost.
            for epoch in sorted(self._epoch_states):
                self._close_epoch(epoch)
        # Cumulative state (one-shot queries; raw tuples and epoch-less
        # partials of windowed plans) is emitted here either way.
        for key, state in self._groups.items():
            payload = {
                spec.output: result
                for spec, result in zip(self.aggregate_specs, state.results())
            }
            self.emit(self._group_tuple(key, payload))
