"""Physical dataflow operators (paper Section 3.3.4).

Every operator follows the non-blocking iterator model of Section 3.3.5:
control (probes) flows from parents to children via plain function calls,
and data is pushed from children to parents as it arrives, with queue
operators breaking the call stack so the event loop can breathe.
"""

from repro.qp.operators.base import (
    ExecutionContext,
    PhysicalOperator,
    build_operator,
    register_operator,
    registered_operator_types,
)

# Import operator modules for their registration side effects.
from repro.qp.operators import access  # noqa: F401
from repro.qp.operators import relational  # noqa: F401
from repro.qp.operators import joins  # noqa: F401
from repro.qp.operators import groupby  # noqa: F401
from repro.qp.operators import exchange  # noqa: F401
from repro.qp.operators import control  # noqa: F401
from repro.qp.operators import eddy  # noqa: F401
from repro.qp import hierarchical  # noqa: F401  (hierarchical agg / join operators)

__all__ = [
    "ExecutionContext",
    "PhysicalOperator",
    "build_operator",
    "register_operator",
    "registered_operator_types",
]
