"""Join operators (paper Section 3.3.4).

PIER's core join algorithms are the Symmetric Hash join — both inputs are
hashed as they arrive, so results stream out without blocking — and the
Fetch Matches join, a distributed index join that issues a DHT ``get`` for
each outer tuple against a published (primary or secondary) index.
Bloom-join and semi-join rewrites are composed from these plus the bloom
operators (see :mod:`repro.qp.rewrites`).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Any, DefaultDict, Dict, List, Optional, Set, Tuple as PyTuple

from repro.qp.operators.base import PhysicalOperator, register_operator
from repro.qp.tuples import MalformedTupleError, Tuple


@register_operator
class SymmetricHashJoin(PhysicalOperator):
    """Pipelining equi-join: hash and probe both inputs symmetrically.

    Params: ``left_columns``, ``right_columns`` (equi-join key columns for
    slot 0 and slot 1), optional ``output_table``.
    """

    op_type = "symmetric_hash_join"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.left_columns: List[str] = list(self.require_param("left_columns"))
        self.right_columns: List[str] = list(self.require_param("right_columns"))
        if len(self.left_columns) != len(self.right_columns):
            raise ValueError("join key column lists must have equal length")
        self._tables: PyTuple[DefaultDict[Any, List[Tuple]], ...] = (
            defaultdict(list),
            defaultdict(list),
        )

    def _key(self, tup: Tuple, slot: int) -> Any:
        columns = self.left_columns if slot == 0 else self.right_columns
        return tup.key(columns)

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        if slot not in (0, 1):
            raise MalformedTupleError(f"join received tuple on unknown slot {slot}")
        key = self._key(tup, slot)
        self._tables[slot][key].append(tup)
        other = 1 - slot
        for match in self._tables[other].get(key, []):
            left, right = (tup, match) if slot == 0 else (match, tup)
            self.emit(left.join(right, table=self.param("output_table")), tag)

    @property
    def state_size(self) -> int:
        return sum(len(bucket) for table in self._tables for bucket in table.values())


@register_operator
class FetchMatchesJoin(PhysicalOperator):
    """Distributed index join: for each outer tuple, fetch matching inner
    tuples from the DHT index published under ``inner_namespace``.

    The inner relation must have been published into the DHT partitioned on
    the join key (a *primary index*), or be a (key, tupleID) secondary
    index that a subsequent Fetch Matches join dereferences.

    Params: ``outer_columns`` (join key columns of the outer input),
    ``inner_namespace``, ``inner_table`` (table name for fetched tuples),
    optional ``inner_filter_columns``/``output_table``/``scoped``.
    """

    op_type = "fetch_matches_join"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.outer_columns: List[str] = list(self.require_param("outer_columns"))
        self.inner_namespace: str = self.require_param("inner_namespace")
        if self.param("scoped", False):
            self.inner_namespace = context.scoped_namespace(self.inner_namespace)
        self.inner_table: str = self.param("inner_table", self.inner_namespace)
        self.fetches_issued = 0
        self.fetches_completed = 0

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        key = tup.key(self.outer_columns)
        lookup_key = key[0] if len(key) == 1 else key
        self.fetches_issued += 1

        def on_fetch(_namespace: str, _key: object, objects: List[object]) -> None:
            self.fetches_completed += 1
            for value in objects:
                inner = self._coerce(value)
                if inner is None:
                    self.stats.tuples_dropped += 1
                    continue
                self.emit(tup.join(inner, table=self.param("output_table")), tag)

        self.context.overlay.get(self.inner_namespace, lookup_key, on_fetch)

    def _coerce(self, value: object) -> Optional[Tuple]:
        if isinstance(value, Tuple):
            return value
        if isinstance(value, dict):
            if "table" in value and "values" in value:
                try:
                    return Tuple.from_wire(value)
                except MalformedTupleError:
                    return None
            return Tuple(self.inner_table, value)
        return None


@register_operator
class NestedLoopJoin(PhysicalOperator):
    """Node-local nested-loop join with an arbitrary predicate.

    Used for non-equi joins after data has already been co-located (e.g. by
    a ``put`` exchange); both inputs are buffered in memory.
    Params: ``predicate`` (see :mod:`repro.qp.expressions`, evaluated over
    the concatenated tuple), optional ``output_table``.
    """

    op_type = "nested_loop_join"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self._buffers: PyTuple[List[Tuple], List[Tuple]] = ([], [])

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        from repro.qp.expressions import matches

        if slot not in (0, 1):
            raise MalformedTupleError(f"join received tuple on unknown slot {slot}")
        self._buffers[slot].append(tup)
        other = 1 - slot
        predicate = self.param("predicate")
        for match in self._buffers[other]:
            left, right = (tup, match) if slot == 0 else (match, tup)
            joined = left.join(right, table=self.param("output_table"))
            if matches(predicate, joined):
                self.emit(joined, tag)


class BloomFilter:
    """A simple counting-free Bloom filter over join keys.

    Used by the Bloom-join rewrite: the filter summarising one relation's
    join keys is shipped to the other relation's partitions so that only
    probably-matching tuples are rehashed across the network.
    """

    def __init__(self, size_bits: int = 8192, hash_count: int = 3) -> None:
        if size_bits <= 0 or hash_count <= 0:
            raise ValueError("size_bits and hash_count must be positive")
        self.size_bits = size_bits
        self.hash_count = hash_count
        self.bits: Set[int] = set()
        self.items_added = 0

    def _positions(self, key: Any) -> List[int]:
        encoded = repr(key).encode()
        positions = []
        for index in range(self.hash_count):
            digest = hashlib.sha1(encoded + bytes([index])).digest()
            positions.append(int.from_bytes(digest[:8], "big") % self.size_bits)
        return positions

    def add(self, key: Any) -> None:
        self.items_added += 1
        self.bits.update(self._positions(key))

    def might_contain(self, key: Any) -> bool:
        return all(position in self.bits for position in self._positions(key))

    def merge(self, other: "BloomFilter") -> "BloomFilter":
        if other.size_bits != self.size_bits or other.hash_count != self.hash_count:
            raise ValueError("cannot merge Bloom filters with different shapes")
        merged = BloomFilter(self.size_bits, self.hash_count)
        merged.bits = set(self.bits) | set(other.bits)
        merged.items_added = self.items_added + other.items_added
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "size_bits": self.size_bits,
            "hash_count": self.hash_count,
            "bits": sorted(self.bits),
            "items_added": self.items_added,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "BloomFilter":
        bloom = BloomFilter(payload["size_bits"], payload["hash_count"])
        bloom.bits = set(payload["bits"])
        # Older serialisations lack "items_added"; infer non-emptiness from
        # the bit set so a populated filter never reads back as empty (which
        # made every probe a no-op).
        bloom.items_added = int(payload.get("items_added", 1 if bloom.bits else 0))
        return bloom


@register_operator
class BloomFilterBuild(PhysicalOperator):
    """Accumulate a Bloom filter over the input's join keys and publish it
    into a query-scoped DHT namespace on flush.

    Params: ``columns`` (key columns), ``filter_namespace``, optional
    ``size_bits``/``hash_count``.
    """

    op_type = "bloom_build"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.columns: List[str] = list(self.require_param("columns"))
        self.filter_namespace = context.scoped_namespace(self.require_param("filter_namespace"))
        self.publish_delay = float(self.param("publish_delay", 0.5))
        self._published_items = -1
        self.bloom = BloomFilter(
            size_bits=int(self.param("size_bits", 8192)),
            hash_count=int(self.param("hash_count", 3)),
        )

    def start(self) -> None:
        # Publish shortly after the initial scan so probes waiting on the
        # filter see it early in the query, then keep republishing while new
        # keys arrive (e.g. streamed base data) so probe refreshes converge.
        if self.publish_delay > 0:
            self.arm_timer(self.publish_delay, self._periodic_publish)

    def _periodic_publish(self, _data: object) -> None:
        if self._stopped:
            return
        if self.bloom.items_added != self._published_items:
            self._publish()
        self.arm_timer(self.publish_delay, self._periodic_publish)

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        self.bloom.add(tup.key(self.columns))

    def flush(self) -> None:
        self._publish()

    def _publish(self) -> None:
        if self._stopped:
            return
        self._published_items = self.bloom.items_added
        # The per-node suffix is stable, so a re-publish overwrites this
        # node's previous filter instead of accumulating duplicates.
        self.context.overlay.put(
            self.filter_namespace,
            key="bloom",
            suffix=f"from-{self.context.overlay.identifier:016x}",
            value=self.bloom.to_dict(),
            lifetime=self.context.lifetime,
        )


@register_operator
class BloomFilterProbe(PhysicalOperator):
    """Filter the input against the Bloom filters published under
    ``filter_namespace`` (dropping tuples that cannot join).

    The filter view is refreshed every ``wait`` seconds and refreshes merge
    monotonically, but a tuple tested against a not-yet-complete filter is
    dropped for good — the rewrite trades bandwidth for the same
    best-effort semantics as the rest of the system.

    Params: ``columns``, ``filter_namespace``, ``wait`` (seconds before the
    first filter fetch and between refreshes).
    """

    op_type = "bloom_probe"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.columns: List[str] = list(self.require_param("columns"))
        self.filter_namespace = context.scoped_namespace(self.require_param("filter_namespace"))
        self.wait = float(self.param("wait", 2.5))
        self._bloom: Optional[BloomFilter] = None
        self._pending: List[PyTuple[Tuple, str]] = []
        self.tuples_filtered = 0

    def start(self) -> None:
        def on_get(_namespace: str, _key: object, objects: List[object]) -> None:
            bloom: Optional[BloomFilter] = None
            for payload in objects:
                if not isinstance(payload, dict):
                    continue
                piece = BloomFilter.from_dict(payload)
                bloom = piece if bloom is None else bloom.merge(piece)
            if bloom is not None and self._bloom is not None:
                # Refresh: merging is monotone, so tuples already passed
                # stay valid; the refreshed filter only admits more.
                bloom = bloom.merge(self._bloom)
            self._bloom = bloom if bloom is not None else (self._bloom or BloomFilter())
            pending, self._pending = self._pending, []
            for tup, tag in pending:
                self.on_receive(tup, 0, tag)

        def fetch(_data: object) -> None:
            if self._stopped:
                return
            self.context.overlay.get(self.filter_namespace, "bloom", on_get)
            # Keep refreshing so filters from late-starting builders (or
            # keys streamed into the build side mid-query) are picked up,
            # narrowing the false-negative window for later inner tuples.
            if self.wait > 0:
                self.arm_timer(self.wait, fetch)

        # Give builders elsewhere in the network time to publish their
        # filters; input tuples buffer until the merged filter arrives.
        if self.wait > 0:
            self.arm_timer(self.wait, fetch)
        else:
            fetch(None)

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        if self._bloom is None:
            self._pending.append((tup, tag))
            return
        if self._bloom.items_added == 0 or self._bloom.might_contain(tup.key(self.columns)):
            self.emit(tup, tag)
        else:
            self.tuples_filtered += 1

    def flush(self) -> None:
        # If the filter never arrived (query ended first), fall back to
        # passing the buffered tuples through unfiltered.
        if self._bloom is not None:
            return
        pending, self._pending = self._pending, []
        for tup, tag in pending:
            self.emit(tup, tag)
