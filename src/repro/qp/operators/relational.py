"""Classic relational operators: selection, projection, tee, union,
duplicate elimination, rename, limit and the in-memory table materializer
(paper Section 3.3.4).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.qp.expressions import evaluate, matches
from repro.qp.operators.base import PhysicalOperator, register_operator
from repro.qp.tuples import MalformedTupleError, Tuple


@register_operator
class Selection(PhysicalOperator):
    """Filter tuples by a predicate (see :mod:`repro.qp.expressions`).

    Params: ``predicate``.
    """

    op_type = "selection"

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        if matches(self.param("predicate"), tup):
            self.emit(tup, tag)


@register_operator
class Projection(PhysicalOperator):
    """Project to named columns and/or computed expressions.

    Params: ``columns`` (list of column names), ``computed`` (mapping of
    output column -> expression), ``keep_all`` (retain every input column
    and add the computed ones), ``table`` (optional output table name).
    """

    op_type = "projection"

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        columns: Optional[List[str]] = self.param("columns")
        computed: Dict[str, Any] = self.param("computed", {})
        values: Dict[str, Any] = {}
        if self.param("keep_all", False):
            values.update(tup.as_mapping())
        if columns:
            for column in columns:
                values[column] = tup.require(column)
        for output, expression in computed.items():
            values[output] = evaluate(expression, tup)
        if not values:
            values = tup.as_mapping()
        self.emit(Tuple(self.param("table", tup.table), values), tag)


@register_operator
class Tee(PhysicalOperator):
    """Copy the input stream to every consumer (fan-out)."""

    op_type = "tee"

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        self.emit(tup, tag)


@register_operator
class Union(PhysicalOperator):
    """Bag union of any number of inputs (slots are not distinguished)."""

    op_type = "union"

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        self.emit(tup, tag)


@register_operator
class DuplicateElimination(PhysicalOperator):
    """Emit each distinct tuple once.

    Params: ``key_columns`` (optional; default is the whole tuple).
    """

    op_type = "dupelim"

    def __init__(self, spec, context) -> None:  # noqa: ANN001 - see base class
        super().__init__(spec, context)
        self._seen: Set[Any] = set()

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        key_columns = self.param("key_columns")
        key = tup.key(key_columns) if key_columns else tup
        if key in self._seen:
            return
        self._seen.add(key)
        self.emit(tup, tag)


@register_operator
class Rename(PhysicalOperator):
    """Rename the tuple's table (and optionally columns).

    Params: ``table`` (new table name), ``columns`` (old -> new mapping).
    """

    op_type = "rename"

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        mapping = self.param("columns", {})
        values = {
            mapping.get(column, column): value
            for column, value in tup.as_mapping().items()
        }
        self.emit(Tuple(self.param("table", tup.table), values), tag)


@register_operator
class Limit(PhysicalOperator):
    """Pass at most ``count`` tuples (applied per node; the proxy applies a
    final limit for global semantics).

    Params: ``count``.
    """

    op_type = "limit"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self._passed = 0

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        if self._passed >= int(self.require_param("count")):
            return
        self._passed += 1
        self.emit(tup, tag)


@register_operator
class Materializer(PhysicalOperator):
    """In-memory table materializer: buffer the input and expose it to other
    operators (and to :meth:`flush`) as a node-local table.

    Params: ``table`` (name under which rows are registered in
    ``context.extras['local_tables']``), ``emit_on_flush`` (default True).
    """

    op_type = "materializer"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.table = self.require_param("table")
        self.rows: List[Tuple] = []
        context.extras.setdefault("local_tables", {})[self.table] = self.rows

    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        self.rows.append(tup)

    def flush(self) -> None:
        if self.param("emit_on_flush", True):
            for tup in self.rows:
                self.emit(tup)
