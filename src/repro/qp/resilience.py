"""Per-query resilience policy: how a query behaves under churn.

The paper's central claim is that an Internet-scale query processor must
keep answering while nodes constantly arrive and depart, relying on DHT
soft-state and relaxed (dilated-reachable-snapshot) semantics rather than
transactional guarantees.  :class:`ResiliencePolicy` bundles the knobs that
turn those semantics on for one query:

* ``liveness_interval`` — the proxy actively probes the query's
  participants this often (virtual seconds) and folds failures into the
  result's *coverage* metric; ``0`` disables active probing (passive
  membership notifications still feed coverage).
* ``redisseminate`` — when a participant recovers (or newly arrives)
  mid-query, the proxy re-installs the query's still-running opgraphs
  there so its local data rejoins continuous/windowed queries.
* ``handoff`` — hierarchical aggregates monitor aggregation-tree root
  ownership and hand root state over when ownership moves (node failure
  or rejoin), so an aggregate completes with correct merges across a
  root failure.
* ``root_monitor_interval`` — how often (virtual seconds) each node
  re-resolves the aggregation-tree root owner when ``handoff`` is on.

The policy travels in ``plan.metadata["resilience"]`` so every executing
node — not just the proxy that compiled the plan — sees the same settings
(the same envelope mechanism the exchange batching knobs use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

RESILIENCE_METADATA_KEY = "resilience"


@dataclass(frozen=True)
class ResiliencePolicy:
    """Churn-resilience settings for one query (all off by default)."""

    liveness_interval: float = 0.0
    redisseminate: bool = False
    handoff: bool = False
    root_monitor_interval: float = 1.0

    @classmethod
    def enabled(
        cls,
        liveness_interval: float = 1.0,
        root_monitor_interval: float = 1.0,
    ) -> "ResiliencePolicy":
        """The everything-on policy used when a deployment runs under churn."""
        return cls(
            liveness_interval=liveness_interval,
            redisseminate=True,
            handoff=True,
            root_monitor_interval=root_monitor_interval,
        )

    @property
    def active(self) -> bool:
        return self.liveness_interval > 0 or self.redisseminate or self.handoff

    def to_metadata(self) -> Dict[str, Any]:
        return {
            "liveness_interval": self.liveness_interval,
            "redisseminate": self.redisseminate,
            "handoff": self.handoff,
            "root_monitor_interval": self.root_monitor_interval,
        }

    @classmethod
    def from_metadata(cls, metadata: Optional[Mapping[str, Any]]) -> "ResiliencePolicy":
        payload = (metadata or {}).get(RESILIENCE_METADATA_KEY)
        if not isinstance(payload, Mapping):
            return cls()
        return cls(
            liveness_interval=float(payload.get("liveness_interval", 0.0)),
            redisseminate=bool(payload.get("redisseminate", False)),
            handoff=bool(payload.get("handoff", False)),
            root_monitor_interval=float(payload.get("root_monitor_interval", 1.0)),
        )


def resolve_resilience(
    value: Union[None, bool, Mapping[str, Any], ResiliencePolicy],
    default: Optional[ResiliencePolicy] = None,
) -> Optional[ResiliencePolicy]:
    """Normalise the user-facing ``resilience=`` argument.

    ``None`` falls back to the deployment default, ``True``/``False`` pick
    the fully-enabled/disabled policies, and a mapping overrides individual
    fields of :class:`ResiliencePolicy`.
    """
    if value is None:
        return default
    if isinstance(value, ResiliencePolicy):
        return value
    if value is True:
        return ResiliencePolicy.enabled()
    if value is False:
        return ResiliencePolicy()
    if isinstance(value, Mapping):
        return ResiliencePolicy(**dict(value))
    raise TypeError(
        f"resilience must be a ResiliencePolicy, bool, or mapping, not {type(value)!r}"
    )
