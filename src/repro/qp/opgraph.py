"""UFL query plans: opgraphs of physical operators (paper Section 3.3.2).

A UFL query is a direct specification of a physical execution plan: one or
more *opgraphs*, each a connected DAG of dataflow operators.  Separate
opgraphs are formed wherever the query redistributes data around the
network; a producer in one opgraph and a consumer in another rendezvous
through a DHT namespace (the distributed Exchange pattern).  Opgraphs are
also the unit of dissemination: each one carries a dissemination spec that
says which nodes must run it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

_query_counter = itertools.count(1)


def next_query_id(prefix: str = "q") -> str:
    return f"{prefix}{next(_query_counter):06d}"


@dataclass(frozen=True)
class OperatorSpec:
    """Specification of one operator instance in an opgraph.

    ``inputs`` lists the operator ids whose output feeds this operator, in
    input-slot order (slot 0, slot 1, ...); joins use two slots.
    """

    operator_id: str
    op_type: str
    params: Mapping[str, Any] = field(default_factory=dict)
    inputs: Tuple[str, ...] = ()

    def with_params(self, **extra: Any) -> "OperatorSpec":
        params = dict(self.params)
        params.update(extra)
        return OperatorSpec(self.operator_id, self.op_type, params, self.inputs)


@dataclass(frozen=True)
class DisseminationSpec:
    """Which nodes must run an opgraph (paper Section 3.3.3).

    * ``broadcast`` — every node, via the distribution tree (true-predicate
      index).
    * ``equality`` — only the node(s) responsible for ``namespace``/``key``
      in the DHT (equality-predicate index).
    * ``range``    — the nodes covering ``(low, high)`` of a PHT-indexed
      attribute (range-predicate index).
    * ``local``    — only the proxy node itself (e.g. final result
      assembly).
    """

    strategy: str = "broadcast"
    namespace: Optional[str] = None
    key: Any = None
    low: Any = None
    high: Any = None

    def __post_init__(self) -> None:
        if self.strategy not in {"broadcast", "equality", "range", "local"}:
            raise ValueError(f"unknown dissemination strategy {self.strategy!r}")


@dataclass
class OpGraph:
    """A connected DAG of operators plus its dissemination spec."""

    graph_id: str
    operators: Dict[str, OperatorSpec] = field(default_factory=dict)
    dissemination: DisseminationSpec = field(default_factory=DisseminationSpec)

    def add(self, spec: OperatorSpec) -> OperatorSpec:
        if spec.operator_id in self.operators:
            raise ValueError(f"duplicate operator id {spec.operator_id!r}")
        self.operators[spec.operator_id] = spec
        return spec

    def add_operator(
        self,
        operator_id: str,
        op_type: str,
        params: Optional[Mapping[str, Any]] = None,
        inputs: Iterable[str] = (),
    ) -> OperatorSpec:
        return self.add(
            OperatorSpec(operator_id, op_type, dict(params or {}), tuple(inputs))
        )

    def sources(self) -> List[OperatorSpec]:
        """Operators with no inputs (access methods)."""
        return [spec for spec in self.operators.values() if not spec.inputs]

    def sinks(self) -> List[OperatorSpec]:
        """Operators whose output no other operator consumes."""
        consumed = {
            input_id for spec in self.operators.values() for input_id in spec.inputs
        }
        return [
            spec for spec in self.operators.values() if spec.operator_id not in consumed
        ]

    def topological_order(self) -> List[OperatorSpec]:
        """Operators ordered so every input precedes its consumer."""
        order: List[OperatorSpec] = []
        visited: Dict[str, int] = {}

        def visit(operator_id: str) -> None:
            state = visited.get(operator_id, 0)
            if state == 1:
                raise ValueError("opgraph contains a dependency cycle")
            if state == 2:
                return
            visited[operator_id] = 1
            spec = self.operators[operator_id]
            for input_id in spec.inputs:
                if input_id not in self.operators:
                    raise ValueError(
                        f"operator {operator_id!r} references unknown input {input_id!r}"
                    )
                visit(input_id)
            visited[operator_id] = 2
            order.append(spec)

        for operator_id in self.operators:
            visit(operator_id)
        return order

    def validate(self) -> None:
        """Raise ``ValueError`` if the graph is malformed (cycles, bad refs)."""
        self.topological_order()

    # -- serialisation -------------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "graph_id": self.graph_id,
            "dissemination": {
                "strategy": self.dissemination.strategy,
                "namespace": self.dissemination.namespace,
                "key": self.dissemination.key,
                "low": self.dissemination.low,
                "high": self.dissemination.high,
            },
            "operators": [
                {
                    "id": spec.operator_id,
                    "type": spec.op_type,
                    "params": dict(spec.params),
                    "inputs": list(spec.inputs),
                }
                for spec in self.operators.values()
            ],
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "OpGraph":
        dissemination = payload.get("dissemination", {})
        graph = OpGraph(
            graph_id=payload["graph_id"],
            dissemination=DisseminationSpec(
                strategy=dissemination.get("strategy", "broadcast"),
                namespace=dissemination.get("namespace"),
                key=dissemination.get("key"),
                low=dissemination.get("low"),
                high=dissemination.get("high"),
            ),
        )
        for item in payload.get("operators", []):
            graph.add_operator(
                item["id"], item["type"], item.get("params", {}), item.get("inputs", [])
            )
        return graph


@dataclass
class QueryPlan:
    """A full UFL query: opgraphs plus query-wide execution parameters.

    ``timeout`` is the paper's universal termination mechanism: each node
    executes an opgraph until the timeout expires, for both snapshot and
    continuous queries.
    """

    query_id: str = field(default_factory=next_query_id)
    opgraphs: List[OpGraph] = field(default_factory=list)
    timeout: float = 30.0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_graph(self, graph: OpGraph) -> OpGraph:
        self.opgraphs.append(graph)
        return graph

    def new_graph(
        self, graph_id: Optional[str] = None, dissemination: Optional[DisseminationSpec] = None
    ) -> OpGraph:
        graph = OpGraph(
            graph_id=graph_id or f"{self.query_id}-g{len(self.opgraphs)}",
            dissemination=dissemination or DisseminationSpec(),
        )
        return self.add_graph(graph)

    def validate(self) -> None:
        seen = set()
        for graph in self.opgraphs:
            if graph.graph_id in seen:
                raise ValueError(f"duplicate opgraph id {graph.graph_id!r}")
            seen.add(graph.graph_id)
            graph.validate()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query_id": self.query_id,
            "timeout": self.timeout,
            "metadata": dict(self.metadata),
            "opgraphs": [graph.to_dict() for graph in self.opgraphs],
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "QueryPlan":
        plan = QueryPlan(
            query_id=payload["query_id"],
            timeout=payload.get("timeout", 30.0),
            metadata=dict(payload.get("metadata", {})),
        )
        for graph_payload in payload.get("opgraphs", []):
            plan.add_graph(OpGraph.from_dict(graph_payload))
        return plan
