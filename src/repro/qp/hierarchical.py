"""Hierarchical (in-network) operators (paper Section 3.3.4).

*Hierarchical aggregation* spreads the in-bandwidth of an aggregate over an
aggregation tree: each node sends its local partial aggregate toward a root
identifier with the DHT ``send`` call; the first hop intercepts it via an
upcall, merges it with its own pending partial state, waits briefly for
more children, then forwards one combined partial aggregate a hop closer to
the root.  Distributive and algebraic aggregates need only constant state
per group at every step.

*Hierarchical joins* reduce the out-bandwidth of the node owning a hot hash
bucket: while tuples are being rehashed (``send``) toward their bucket,
every intermediate node caches passing tuples, joins freshly cached pairs
whose forwarding paths have not met before, and emits those "early" results
straight to the proxy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple as PyTuple

from repro.overlay.identifiers import object_identifier
from repro.overlay.naming import random_suffix
from repro.qp.operators.base import PhysicalOperator, register_operator
from repro.qp.operators.groupby import _BaseGroupBy
from repro.qp.tuples import Tuple


@register_operator
class HierarchicalAggregate(_BaseGroupBy):
    """Aggregate over an aggregation tree rooted at a query-specific identifier.

    Every node in the query runs this operator (broadcast dissemination).
    Local input tuples are folded into per-group partial states; the states
    are shipped toward the root after ``local_wait`` seconds.  Intercepted
    partial states from other nodes are merged and held for ``hold``
    seconds before being forwarded onward.  The node that owns the root
    identifier merges everything it receives and emits final result tuples
    downstream (typically into a ``result_handler``) when the query is
    flushed.

    Params: ``aggregates``, ``group_columns``, ``output_table``,
    ``local_wait`` (default 2.0 s), ``hold`` (default 1.0 s), ``window``
    (optional, re-ship local partials periodically for continuous queries).
    """

    op_type = "hierarchical_aggregate"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.local_wait = float(self.param("local_wait", 2.0))
        self.hold = float(self.param("hold", 1.0))
        self.namespace = context.scoped_namespace("__hierarchical_aggregate__")
        self.root_identifier = object_identifier(self.namespace, "root")
        # Merge functions are stateless combiners shared by every merge on
        # this node; building them per merged partial was hot-path waste and
        # broke aggregates whose build() carries state.
        self._merge_functions = [spec.build() for spec in self.aggregate_specs]
        # Partial states intercepted from (or terminating at) other nodes.
        self._held: Dict[PyTuple[Any, ...], List[Any]] = {}
        self._hold_scheduled = False
        self._root_states: Dict[PyTuple[Any, ...], List[Any]] = {}
        # Root ownership is captured once at start: evaluating
        # is_responsible() per enqueue let partials split across two
        # "roots" when ownership moved mid-query, and some groups were
        # never emitted.
        self._is_root_owner = False
        self.partials_sent = 0
        self.partials_intercepted = 0

    # -- lifecycle --------------------------------------------------------- #
    def start(self) -> None:
        super().start()
        self._is_root_owner = self._is_root()
        self.context.overlay.upcall(self.namespace, self._on_upcall)
        self.context.overlay.new_data(self.namespace, self._on_root_arrival)
        # Catch up on partial aggregates that reached this node before the
        # opgraph was installed here (loose synchronization).
        self.context.overlay.local_scan(
            self.namespace, lambda _ns, _key, value: self._on_root_arrival(_ns, _key, value)
        )
        self.context.schedule(self.local_wait, self._ship_local)

    # -- local contribution -------------------------------------------------- #
    def _ship_local(self, _data: object) -> None:
        if self._stopped:
            return
        groups, self._groups = self._groups, {}
        for key, state in groups.items():
            self._enqueue_partial(key, state.states)
        if self.window:
            self.context.schedule(self.window, self._ship_local)

    def _enqueue_partial(self, key: PyTuple[Any, ...], states: List[Any]) -> None:
        """Fold a partial state into the held buffer and arm the hold timer."""
        if self._is_root_owner:
            self._merge_into(self._root_states, key, states)
            return
        self._merge_into(self._held, key, states)
        if not self._hold_scheduled:
            self._hold_scheduled = True
            self.context.schedule(self.hold, self._forward_held)

    def _merge_into(
        self,
        buffer: Dict[PyTuple[Any, ...], List[Any]],
        key: PyTuple[Any, ...],
        states: List[Any],
    ) -> None:
        existing = buffer.get(key)
        if existing is None:
            buffer[key] = list(states)
            return
        buffer[key] = [
            function.merge(left, right)
            for function, left, right in zip(self._merge_functions, existing, states)
        ]

    # -- upcall (intermediate hop) ------------------------------------------- #
    def _on_upcall(self, _namespace: str, _key: object, value: object) -> bool:
        if not isinstance(value, dict) or "partials" not in value:
            return True
        self.partials_intercepted += 1
        for entry in value["partials"]:
            self._enqueue_partial(tuple(entry["key"]), entry["states"])
        return False  # hold; a combined partial will be forwarded later

    def _forward_held(self, _data: object) -> None:
        self._hold_scheduled = False
        if self._stopped or not self._held:
            return
        held, self._held = self._held, {}
        self.partials_sent += 1
        self.context.overlay.send(
            self.namespace,
            key="root",
            suffix=random_suffix(),
            value={
                "partials": [
                    {"key": list(key), "states": states} for key, states in held.items()
                ]
            },
            lifetime=self.context.lifetime,
            target=self.root_identifier,
        )

    # -- root ------------------------------------------------------------------ #
    def _is_root(self) -> bool:
        return self.context.overlay.router.is_responsible(self.root_identifier)

    def _on_root_arrival(self, _namespace: str, _key: object, value: object) -> None:
        if not isinstance(value, dict) or "partials" not in value:
            return
        for entry in value["partials"]:
            self._merge_into(self._root_states, tuple(entry["key"]), entry["states"])

    def flush(self) -> None:
        # Any local groups not yet shipped travel now (e.g. snapshot query
        # whose timeout fires before the next window).
        groups, self._groups = self._groups, {}
        for key, state in groups.items():
            self._enqueue_partial(key, state.states)
        if self._held:
            self._forward_held(None)
        # The captured owner emits; a node that *became* responsible after
        # the captured root failed (routing re-delivered partials here) also
        # emits what it accumulated, so those groups are not silently lost.
        if not (self._is_root_owner or self._is_root()):
            return
        for key, states in self._root_states.items():
            payload = {
                spec.output: function.result(state)
                for spec, function, state in zip(
                    self.aggregate_specs, self._merge_functions, states
                )
            }
            self.emit(self._group_tuple(key, payload))


@register_operator
class HierarchicalJoinExchange(PhysicalOperator):
    """Rehash phase of a parallel hash join with in-path ("early") joins.

    Both join inputs are pushed into this operator (slots 0 and 1).  Each
    tuple is routed toward the DHT bucket for its join key with ``send``;
    every node it passes through caches a copy annotated with the list of
    node identifiers visited so far.  When a passing tuple joins with a
    cached tuple of the other side whose path it has never shared, the
    result is emitted immediately (and shipped by the downstream
    result_handler), off-loading out-bandwidth from the bucket owner.  The
    bucket owner still receives every tuple and performs the complete join,
    skipping pairs whose paths met earlier.

    Params: ``namespace`` (rehash rendezvous), ``left_columns``,
    ``right_columns``, optional ``output_table``, ``lifetime``.
    """

    op_type = "hierarchical_join"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.namespace = context.scoped_namespace(self.require_param("namespace"))
        self.left_columns: List[str] = list(self.require_param("left_columns"))
        self.right_columns: List[str] = list(self.require_param("right_columns"))
        self.output_table: Optional[str] = self.param("output_table")
        self.lifetime = float(self.param("lifetime", context.lifetime))
        # Cache of tuples seen at this node, per join key and side.
        self._cache: Dict[Any, PyTuple[List[Dict[str, Any]], List[Dict[str, Any]]]] = {}
        # Envelope ids already cached/joined at this node: a tuple can reach
        # the same node more than once (e.g. as an upcall and again as the
        # stored bucket copy) and must be processed exactly once.
        self._processed: Set[str] = set()
        self.early_results = 0
        self.final_results = 0

    def start(self) -> None:
        self.context.overlay.upcall(self.namespace, self._on_upcall)
        self.context.overlay.new_data(self.namespace, self._on_bucket_arrival)
        # Nodes are only loosely synchronised: envelopes rehashed by nodes
        # that started earlier may already be stored here.  Catch up on them
        # (Section 3.3.4, "No Global Synchronization").
        self.context.overlay.local_scan(
            self.namespace, lambda _ns, _key, value: self._on_bucket_arrival(_ns, _key, value)
        )

    # -- local input ---------------------------------------------------------- #
    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        columns = self.left_columns if slot == 0 else self.right_columns
        key = tup.key(columns)
        partition_key = key[0] if len(key) == 1 else key
        envelope = {
            "envelope_id": random_suffix(),
            "side": slot,
            "key": list(key),
            "tuple": tup.to_dict(),
            "path": [self.context.overlay.identifier],
        }
        self._process(envelope, emit_early=True)
        self.context.overlay.send(
            self.namespace,
            key=partition_key,
            suffix=envelope["envelope_id"],
            value=envelope,
            lifetime=self.lifetime,
        )

    # -- in-path interception ---------------------------------------------------- #
    def _on_upcall(self, _namespace: str, _key: object, value: object) -> bool:
        if not isinstance(value, dict) or "side" not in value:
            return True
        value["path"] = list(value.get("path", [])) + [self.context.overlay.identifier]
        self._process(value, emit_early=True)
        return True  # keep routing toward the bucket owner

    def _on_bucket_arrival(self, _namespace: str, _key: object, value: object) -> None:
        if not isinstance(value, dict) or "side" not in value:
            return
        self._process(value, emit_early=False)

    def _process(self, envelope: Dict[str, Any], emit_early: bool) -> None:
        envelope_id = envelope.get("envelope_id")
        if envelope_id in self._processed:
            return
        self._processed.add(envelope_id)
        # Cache a snapshot: the in-flight message keeps accumulating path
        # entries as it travels, but this node saw it with the path as-is.
        snapshot = dict(envelope)
        snapshot["path"] = list(envelope.get("path", []))
        self._join_against_cache(snapshot, emit_early=emit_early)
        self._cache_envelope(snapshot)

    # -- join machinery -------------------------------------------------------------#
    def _cache_envelope(self, envelope: Dict[str, Any]) -> None:
        key = tuple(envelope["key"])
        sides = self._cache.setdefault(key, ([], []))
        sides[envelope["side"]].append(envelope)

    def _join_against_cache(self, envelope: Dict[str, Any], emit_early: bool) -> None:
        key = tuple(envelope["key"])
        sides = self._cache.get(key)
        if sides is None:
            return
        other_side = 1 - envelope["side"]
        own_identifier = self.context.overlay.identifier
        for cached in sides[other_side]:
            met_before = (
                set(cached.get("path", [])) & set(envelope.get("path", []))
            ) - {own_identifier}
            if met_before:
                # The two tuples already met at an earlier node, which
                # produced this result there ("annotated with a matching
                # node identifier"): skip to avoid duplicates.
                continue
            left_env, right_env = (
                (envelope, cached) if envelope["side"] == 0 else (cached, envelope)
            )
            left = Tuple.from_dict(left_env["tuple"])
            right = Tuple.from_dict(right_env["tuple"])
            if emit_early:
                self.early_results += 1
            else:
                self.final_results += 1
            self.emit(left.join(right, table=self.output_table))
