"""Hierarchical (in-network) operators (paper Section 3.3.4).

*Hierarchical aggregation* spreads the in-bandwidth of an aggregate over an
aggregation tree: each node sends its local partial aggregate toward a root
identifier with the DHT ``send`` call; the first hop intercepts it via an
upcall, merges it with its own pending partial state, waits briefly for
more children, then forwards one combined partial aggregate a hop closer to
the root.  Distributive and algebraic aggregates need only constant state
per group at every step.

*Hierarchical joins* reduce the out-bandwidth of the node owning a hot hash
bucket: while tuples are being rehashed (``send``) toward their bucket,
every intermediate node caches passing tuples, joins freshly cached pairs
whose forwarding paths have not met before, and emits those "early" results
straight to the proxy.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple as PyTuple

from repro.cq.windows import LATE_EPOCH_SETTLE, epoch_stamp
from repro.overlay.identifiers import object_identifier
from repro.overlay.naming import random_suffix
from repro.qp.integrity import INTEGRITY_NAMESPACE, replica_sampled
from repro.qp.operators.base import PhysicalOperator, register_operator
from repro.qp.operators.groupby import _BaseGroupBy
from repro.qp.tuples import Tuple
from repro.runtime.churn import corrupt_states, suppression_victim
from repro.security.spot_check import commit_to_states


@register_operator
class HierarchicalAggregate(_BaseGroupBy):
    """Aggregate over an aggregation tree rooted at a query-specific identifier.

    Every node in the query runs this operator (broadcast dissemination).
    Local input tuples are folded into per-group partial states; the states
    are shipped toward the root after ``local_wait`` seconds.  Intercepted
    partial states from other nodes are merged and held for ``hold``
    seconds before being forwarded onward.  The node that owns the root
    identifier merges everything it receives and emits final result tuples
    downstream (typically into a ``result_handler``) when the query is
    flushed.

    Root handoff (churn resilience).  With a ``root_monitor_interval``
    (armed by the query's resilience policy), every node periodically
    re-resolves the root owner through a DHT lookup — the same routing that
    discovers dead hops — and the operator switches to *origin-accounted*
    shipping so the aggregate stays exact while ownership moves:

    * Each shipment is a batch tagged ``(origin, incarnation, seq)``.
      Intermediate hops still coalesce traffic (several batches ride one
      message up the tree) but do not merge states across origins, so the
      root can deduplicate per origin: replayed batches are dropped by
      sequence number, and a *newer incarnation* (the node's opgraph was
      re-installed after a failure/rejoin) replaces the origin's earlier
      contribution wholesale instead of double-counting it.
    * On an observed ownership change, every node re-ships its cumulative
      local contribution as a ``cumulative`` batch (replace-on-receipt),
      and a root that loses ownership relays its per-origin folds as
      synthetic cumulative batches — so an aggregate completes with
      correct merges across a root failure or rejoin.

    Without the monitor the operator keeps the paper-pure behaviour:
    intermediate hops merge partial states across origins (constant state
    per group at every step) and the captured root emits.

    Params: ``aggregates``, ``group_columns``, ``output_table``,
    ``local_wait`` (default 2.0 s), ``hold`` (default 1.0 s), ``window``
    (optional, re-ship local partials periodically for continuous
    queries), ``root_monitor_interval`` (seconds; default comes from the
    resilience policy in the dissemination envelope, 0 disables the
    monitor).
    """

    op_type = "hierarchical_aggregate"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.local_wait = float(self.param("local_wait", 2.0))
        self.hold = float(self.param("hold", 1.0))
        # Redundant sub-tree evaluation (repro.qp.integrity): replica r > 0
        # salts the namespace, giving each replica tree an independently
        # placed root identifier — k independently-rooted aggregations of
        # the same scan, reconciled at the proxy.
        self.replica = int(self.param("replica", 0))
        replica_salt = f"r{self.replica}" if self.replica else ""
        self.namespace = context.scoped_namespace(
            f"__hierarchical_aggregate__{replica_salt}"
        )
        self.root_identifier = object_identifier(self.namespace, "root")
        # Root ownership is captured once at start (and updated only by the
        # ownership monitor, when enabled): evaluating is_responsible() per
        # enqueue let partials split across two "roots" when ownership moved
        # mid-query, and some groups were never emitted.
        self._is_root_owner = False
        # Cumulative local contribution (everything this node's scan fed
        # in), kept mergeable so the node can re-ship it wholesale when the
        # aggregation-tree root changes.
        self._local_cum: Dict[PyTuple[Any, ...], List[Any]] = {}
        # Legacy (paper-pure) combining state: partial states intercepted
        # from (or terminating at) other nodes.
        self._held: Dict[PyTuple[Any, ...], List[Any]] = {}
        self._hold_scheduled = False
        self._root_states: Dict[PyTuple[Any, ...], List[Any]] = {}
        # Resilient (origin-accounted) state.
        resilience = context.extras.get("resilience") or {}
        default_monitor = (
            float(resilience.get("root_monitor_interval", 1.0))
            if resilience.get("handoff")
            else 0.0
        )
        self.monitor_interval = float(self.param("root_monitor_interval", default_monitor))
        # Integrity accounting (spot-check commitments + proxy-side
        # reconciliation).  Riding the origin-accounted wire format is a
        # requirement, not a choice: commitments and claims describe
        # per-origin batches, so an active policy forces the monitor on.
        integrity = context.extras.get("integrity") or {}
        self._integrity_active = bool(
            integrity.get("spot_check") or int(integrity.get("redundancy") or 1) > 1
        )
        self._spot_sample = (
            float(integrity.get("spot_check_sample", 1.0))
            if integrity.get("spot_check")
            else 0.0
        )
        if self._integrity_active and self.monitor_interval <= 0:
            self.monitor_interval = 1.0
        # Byzantine role (repro.runtime.churn.ByzantineProcess): honest
        # deployments resolve None here and every attack branch is one
        # attribute check.
        adversary = getattr(context.overlay.runtime, "adversary", None)
        self._adversary = adversary
        self._attacker = adversary.role(context.overlay.address) if adversary else None
        self._root_owner_address: Any = None
        self._origin_id = str(context.overlay.identifier)
        self._incarnation = random_suffix()
        self._incarnation_ts = 0.0
        self._delta_seq = 0
        self._held_batches: Dict[PyTuple[Any, ...], Dict[str, Any]] = {}
        self._forwarded: Set[PyTuple[Any, ...]] = set()
        self._reforwards: Dict[PyTuple[Any, ...], int] = {}
        self._origin_folds: Dict[str, Dict[str, Any]] = {}
        # Windowed (continuous-query) root state: which epochs this node —
        # while owning the root — has already emitted, and which have a
        # pending watermark timer.
        self._epoch_timers: Set[int] = set()
        self._emitted_epochs: Set[int] = set()
        self.epoch_entries_evicted = 0
        self.partials_sent = 0
        self.partials_intercepted = 0
        self.cumulatives_sent = 0
        self.ownership_changes = 0

    # -- lifecycle --------------------------------------------------------- #
    def start(self) -> None:
        super().start()  # arms the pane clock when a window spec is present
        self._is_root_owner = self._is_root()
        self._incarnation_ts = self.context.now
        self.context.overlay.upcall(self.namespace, self._on_upcall)
        self.context.overlay.new_data(self.namespace, self._on_root_arrival)
        # Catch up on partial aggregates that reached this node before the
        # opgraph was installed here (loose synchronization).
        self.context.overlay.local_scan(
            self.namespace, lambda _ns, _key, value: self._on_root_arrival(_ns, _key, value)
        )
        if self.window_spec is None:
            self.arm_timer(self.local_wait, self._ship_local)
        if self._monitoring:
            self.context.overlay.lookup(self.root_identifier, self._on_owner_resolved)
            self.arm_timer(self.monitor_interval, self._monitor_root)
        if (
            self._attacker is not None
            and self._attacker.attack == "forge_origin"
            and self._monitoring
            and self.window_spec is None
        ):
            # Forgers wait until genuine traffic is underway so the forged
            # incarnation supersedes the victims' real batches at the root.
            self.arm_timer(self.local_wait + self.hold, self._forge_origins)

    @property
    def _monitoring(self) -> bool:
        return self.monitor_interval > 0

    # -- local contribution -------------------------------------------------- #
    def _drain_groups(self) -> Dict[PyTuple[Any, ...], List[Any]]:
        """Move accumulated group states out of ``_groups`` and fold them
        into the cumulative local contribution."""
        groups, self._groups = self._groups, {}
        drained = {key: list(state.states) for key, state in groups.items()}
        for key, states in drained.items():
            self._merge_into(self._local_cum, key, states)
        return drained

    def _ship_local(self, _data: object) -> None:
        if self._stopped:
            return
        drained = self._drain_groups()
        # The root's own contribution stays in _local_cum and is merged at
        # flush, so a later handoff cannot double-count it.
        if drained and not self._is_root_owner:
            if self._monitoring:
                self._pack_batch(self._make_batch(drained, cumulative=False))
            else:
                for key, states in drained.items():
                    self._enqueue_partial(key, states)
        if self.window:
            self.arm_timer(self.window, self._ship_local)

    # -- windowed (continuous-query) mode ----------------------------------- #
    def _on_pane_close(self, _data: object) -> None:
        super()._on_pane_close(_data)
        # Evict on every pane tick, not only when this node contributed
        # local data: a quiet node still folds other origins' partials and
        # must shed its expired ledger entries too.
        if not self._stopped:
            self._evict_expired_epochs()

    def _emit_window(
        self, epoch: int, states: Dict[PyTuple[Any, ...], List[Any]]
    ) -> None:
        """Pane-close hook: ship this node's window contribution rootward.

        Group keys are *epoch-prefixed* — ``(epoch, *group_key)`` — so the
        whole origin/incarnation/seq ledger (dedup, cumulative-replace on
        re-ship, handoff relays) applies per window unchanged, and per-
        window totals stay exact across a root failure or rejoin.
        """
        prefixed = {(epoch, *key): list(st) for key, st in states.items()}
        for key, st in prefixed.items():
            self._merge_into(self._local_cum, key, st)
        if not self._is_root_owner:
            if self._monitoring:
                self._pack_batch(self._make_batch(prefixed, cumulative=False))
            else:
                for key, st in prefixed.items():
                    self._enqueue_partial(key, st)
        self._note_epoch(epoch)

    def _note_epoch(self, epoch: Any) -> None:
        """The root owner arms one watermark timer per observed epoch.

        An epoch first noted after its watermark already passed (slow
        partials, or a fresh root catching up post-handoff) waits the
        shared settle time so batches in flight alongside the first
        arrival get folded too, instead of emitting from one origin alone.
        """
        if self.window_spec is None or not isinstance(epoch, int):
            return
        if not self._is_root_owner:
            return
        if epoch in self._emitted_epochs or epoch in self._epoch_timers:
            return
        self._epoch_timers.add(epoch)
        delay = self.window_spec.watermark(epoch) - self.context.now
        if delay <= 0:
            delay = LATE_EPOCH_SETTLE
        self.arm_timer(delay, self._on_epoch_watermark, data=epoch)

    def _note_partial_keys(self, keys: Iterable[Any]) -> None:
        for key in keys:
            if isinstance(key, (list, tuple)) and key:
                self._note_epoch(key[0])

    def _epoch_retention(self) -> float:
        """How long after an epoch's watermark its ledger entries are kept.

        The retention must outlive a root handoff: the monitor notices the
        ownership change within ``root_monitor_interval`` and origins then
        re-ship their retained cumulative state, so a few graces plus a
        couple of slides of slack is plenty — while keeping standing-query
        state bounded by the window, not the lifetime."""
        spec = self.window_spec
        return max(15.0, 4.0 * spec.grace + 2.0 * spec.slide)

    def _evict_expired_epochs(self) -> None:
        """Drop ledger entries of epochs whose watermark passed more than
        the retention ago, bounding per-node state (and the size of
        ``_send_cumulative`` re-ships) for long-lived standing queries."""
        spec = self.window_spec
        horizon = self.context.now - self._epoch_retention()

        def expired(key: Any) -> bool:
            return (
                isinstance(key, tuple)
                and bool(key)
                and isinstance(key[0], int)
                and spec.watermark(key[0]) < horizon
            )

        for buffer in (self._local_cum, self._root_states):
            for key in [key for key in buffer if expired(key)]:
                del buffer[key]
                self.epoch_entries_evicted += 1
        for entry in self._origin_folds.values():
            if entry["base"]:
                for key in [key for key in entry["base"] if expired(key)]:
                    del entry["base"][key]
                    self.epoch_entries_evicted += 1
            # Delta dicts stay registered by seq (replay dedup) but shed
            # their expired keys.
            for partials in entry["deltas"].values():
                for key in [key for key in partials if expired(key)]:
                    del partials[key]
                    self.epoch_entries_evicted += 1

    def _note_ledger_epochs(self) -> None:
        """Arm watermark timers for every epoch already present in the
        ledgers — how a node that just *became* root (handoff) catches up
        on epochs the failed root never emitted."""
        self._note_partial_keys(self._root_states)
        self._note_partial_keys(self._local_cum)
        for entry in self._origin_folds.values():
            if entry["base"]:
                self._note_partial_keys(entry["base"])
            for partials in entry["deltas"].values():
                self._note_partial_keys(partials)

    def _on_epoch_watermark(self, epoch: int) -> None:
        self._epoch_timers.discard(epoch)
        if self._stopped or not self._is_root_owner:
            return
        self._emit_epoch(epoch)

    def _emit_epoch(self, epoch: int) -> None:
        """Merge and emit every contribution for one epoch, exactly once."""
        if epoch in self._emitted_epochs:
            return
        final: Dict[PyTuple[Any, ...], List[Any]] = {}
        contributors = 0

        def take(buffer: Dict[PyTuple[Any, ...], List[Any]]) -> None:
            nonlocal contributors
            matched = False
            for key, states in buffer.items():
                if isinstance(key, tuple) and key and key[0] == epoch:
                    self._merge_into(final, tuple(key[1:]), states)
                    matched = True
            if matched:
                contributors += 1

        take(self._root_states)
        for origin, entry in self._origin_folds.items():
            if origin == self._origin_id:
                continue  # own contribution comes from _local_cum below
            take(self._fold_states(entry))
        if self._is_root_owner:
            take(self._local_cum)
        if not final:
            # Nothing folded yet (e.g. every batch still in flight): leave
            # the epoch unemitted so a later arrival can re-arm the timer.
            return
        self._emitted_epochs.add(epoch)
        if self.emit_states:
            # Shared plans want mergeable states at the root too, so the
            # fan-out layer can re-slice epochs per subscriber slide.  A
            # handoff root re-emitting from a thinner catch-up ledger must
            # not degrade subscriber buffers, so each emission carries its
            # contributor count.
            self._emit_window_states(epoch, final, contributors=contributors)
            return
        stamp = epoch_stamp(self.window_spec, epoch)
        for key, states in final.items():
            payload = {
                spec.output: function.result(state)
                for spec, function, state in zip(
                    self.aggregate_specs, self._merge_functions, states
                )
            }
            payload.update(stamp)
            self.emit(self._group_tuple(key, payload))
        self.epochs_emitted += 1

    def _enqueue_partial(self, key: PyTuple[Any, ...], states: List[Any]) -> None:
        """Legacy combining: fold a partial state into the held buffer (or
        the root's merged state) and arm the hold timer."""
        if self._is_root_owner:
            self._merge_into(self._root_states, key, states)
            return
        self._merge_into(self._held, key, states)
        self._arm_hold_timer()

    def _arm_hold_timer(self) -> None:
        if not self._hold_scheduled:
            self._hold_scheduled = True
            self.arm_timer(self.hold, self._forward_held)

    # -- origin-accounted batches (resilient mode) ----------------------------- #
    def _make_batch(
        self, partials: Dict[PyTuple[Any, ...], List[Any]], cumulative: bool
    ) -> Dict[str, Any]:
        self._delta_seq += 1
        return {
            "origin": self._origin_id,
            "inc": self._incarnation,
            "inc_ts": self._incarnation_ts,
            "seq": self._delta_seq,
            "cumulative": cumulative,
            "partials": [
                {"key": list(key), "states": states} for key, states in partials.items()
            ],
        }

    @staticmethod
    def _batch_key(batch: Dict[str, Any]) -> PyTuple[Any, ...]:
        return (batch.get("origin"), batch.get("inc"), batch.get("seq"))

    # A batch stored at a stale non-owner is re-forwarded toward the root,
    # but only this many times: routing views converge quickly (marking the
    # dead hop triggers a refresh), and the cap keeps two nodes with
    # mutually stale views from ping-ponging a batch forever.
    MAX_REFORWARDS = 3

    def _pack_batch(self, batch: Dict[str, Any], reforward: bool = False) -> None:
        """Coalesce a batch into the next uphill message (forwarded once;
        ``reforward`` retries a stale-delivered batch up to the cap)."""
        key = self._batch_key(batch)
        if key in self._held_batches:
            return
        if reforward:
            attempts = self._reforwards.get(key, 0)
            if attempts >= self.MAX_REFORWARDS:
                return
            self._reforwards[key] = attempts + 1
        elif key in self._forwarded:
            return
        self._held_batches[key] = batch
        self._arm_hold_timer()

    def _send_cumulative(self) -> None:
        """Re-ship this node's full cumulative contribution toward the root.

        ``cumulative`` batches replace the origin's fold at the root, so
        re-delivery — and anything the new root missed — is idempotent.
        """
        if self._stopped or not self._local_cum:
            return
        self.cumulatives_sent += 1
        self._pack_batch(self._make_batch(self._local_cum, cumulative=True))

    def _forward_held(self, _data: object) -> None:
        self._hold_scheduled = False
        if self._stopped:
            return
        if self._held:
            held, self._held = self._held, {}
            self.partials_sent += 1
            self.context.overlay.send(
                self.namespace,
                key="root",
                suffix=random_suffix(),
                value={
                    "partials": [
                        {"key": list(key), "states": states} for key, states in held.items()
                    ]
                },
                lifetime=self.context.lifetime,
                target=self.root_identifier,
            )
        if self._held_batches:
            batches, self._held_batches = self._held_batches, {}
            self._forwarded.update(batches.keys())
            self.partials_sent += 1
            self.context.overlay.send(
                self.namespace,
                key="root",
                suffix=random_suffix(),
                value={"batches": list(batches.values())},
                lifetime=self.context.lifetime,
                target=self.root_identifier,
            )

    # -- per-origin folds (the root's dedup ledger) ----------------------------- #
    def _fold_batch(self, batch: Dict[str, Any]) -> None:
        """Fold one origin batch into the per-origin ledger, exactly once.

        Replays are dropped by ``seq``; a newer incarnation (the origin's
        opgraph was re-installed) resets the origin's entry so a rejoining
        node's full re-scan replaces — never adds to — what it contributed
        before failing; a ``cumulative`` batch supersedes every delta with
        ``seq`` at or below its own.
        """
        origin = batch.get("origin")
        if origin is None:
            return
        entry = self._origin_folds.get(origin)
        if entry is None or batch["inc_ts"] > entry["inc_ts"] or (
            batch["inc_ts"] == entry["inc_ts"] and batch["inc"] > entry["inc"]
        ):
            entry = {
                "inc": batch["inc"],
                "inc_ts": batch["inc_ts"],
                "base": None,
                "base_seq": 0,
                "deltas": {},
            }
            self._origin_folds[origin] = entry
        elif batch["inc"] != entry["inc"]:
            return  # stale incarnation: superseded by a re-install
        # Custody trail: every node that re-packed this origin's batches.
        # Reported alongside the root's claims so a verification failure
        # can name the nodes that handled the corrupted data.
        entry.setdefault("relays", set()).update(
            tuple(relay) if isinstance(relay, list) else relay
            for relay in batch.get("relays", [])
        )
        seq = int(batch["seq"])
        partials = {
            tuple(item["key"]): list(item["states"]) for item in batch.get("partials", [])
        }
        if batch.get("cumulative"):
            if seq <= entry["base_seq"]:
                return
            entry["base"] = partials
            entry["base_seq"] = seq
            entry["deltas"] = {
                delta_seq: states
                for delta_seq, states in entry["deltas"].items()
                if delta_seq > seq
            }
            return
        if seq <= entry["base_seq"] or seq in entry["deltas"]:
            return
        entry["deltas"][seq] = partials

    def _fold_states(self, entry: Dict[str, Any]) -> Dict[PyTuple[Any, ...], List[Any]]:
        merged: Dict[PyTuple[Any, ...], List[Any]] = {}
        if entry["base"]:
            for key, states in entry["base"].items():
                self._merge_into(merged, key, states)
        for _seq, partials in sorted(entry["deltas"].items()):
            for key, states in partials.items():
                self._merge_into(merged, key, states)
        return merged

    def _relay_folds(self) -> None:
        """Hand the per-origin ledger to the new root as synthetic
        cumulative batches (covers origins that can no longer re-ship)."""
        for origin, entry in self._origin_folds.items():
            if origin == self._origin_id:
                continue
            states = self._fold_states(entry)
            if not states:
                continue
            seq = max([entry["base_seq"], *entry["deltas"].keys()])
            self._pack_batch(
                {
                    "origin": origin,
                    "inc": entry["inc"],
                    "inc_ts": entry["inc_ts"],
                    "seq": seq,
                    "cumulative": True,
                    "partials": [
                        {"key": list(key), "states": s} for key, s in states.items()
                    ],
                },
                reforward=True,
            )

    # -- byzantine behaviors (adversarial aggregator role) ---------------------- #
    # Attackers misbehave only while *aggregating* — their own scan data is
    # shipped honestly, matching the SIA threat model the paper cites (a
    # node lying about its own readings is a bounded-influence residual no
    # aggregation protocol can detect).  Every observable act is recorded
    # into the adversary's ledger so benchmarks can compute detection rates
    # against ground truth.
    def _record_attack(self, origin: Any = None) -> None:
        if self._adversary is not None and self._attacker is not None:
            self._adversary.record(
                self._attacker.address,
                self._attacker.attack,
                origin=origin,
                replica=self.replica,
            )

    def _forge_origins(self, _data: object) -> None:
        """The ``forge_origin`` attack: inject cumulative batches spoofing
        other origins under a fresher incarnation, zeroing their folds.

        ``~forged`` sorts above every ``random_suffix`` incarnation and the
        current time wins the ``inc_ts`` tie-break, so the forged (empty)
        batch replaces the victim's genuine contribution wholesale — the
        same replacement machinery an honest rejoin uses, turned hostile.
        """
        if self._stopped or self._attacker is None:
            return
        candidates = [
            str(contact.identifier)
            for contact in self.context.overlay.directory.members()
            if str(contact.identifier) != self._origin_id
        ]
        for victim in self._adversary.forge_victims(self._attacker.address, candidates):
            forged = {
                "origin": victim,
                "inc": "~forged",
                "inc_ts": self.context.now,
                "seq": 1,
                "cumulative": True,
                "partials": [],
                "relays": [self.context.overlay.address],
            }
            self._record_attack(origin=victim)
            if self._is_root_owner:
                self._fold_batch(forged)
            else:
                self._pack_batch(forged)

    def _attack_passing_batches(self, batches: List[Dict[str, Any]]) -> bool:
        """An attacker on the forwarding path violates routing custody.

        Honest intermediates leave origin-accounted batches in the routing
        layer's custody (upcall returns True).  An attacker absorbs them
        (returns False, so the routing layer considers them delivered) and
        then discards, censors, or re-packs corrupted copies stamped with
        its own relay mark — exactly the misbehavior the spot-check
        commitments are designed to surface.  Attacks are recorded only
        when the batch carried data: tampering with an empty batch is
        unobservable and must not count against the detector.
        """
        attack = self._attacker.attack
        if attack == "forge_origin":
            return True  # forgers relay honestly; their damage is injected
        my_address = self.context.overlay.address
        for batch in batches:
            partials = batch.get("partials", [])
            origin = batch.get("origin")
            if attack == "drop_partials":
                if partials:
                    self._record_attack(origin=origin)
                continue  # absorbed and discarded
            if attack == "suppress_sources" and suppression_victim(origin):
                if partials:
                    self._record_attack(origin=origin)
                continue  # censored source
            relays = list(batch.get("relays", [])) + [my_address]
            if attack == "inflate_partials" and partials:
                partials = [
                    {
                        "key": item["key"],
                        "states": corrupt_states(
                            item["states"], self._attacker.inflation_factor
                        ),
                    }
                    for item in partials
                ]
                self._record_attack(origin=origin)
            self._pack_batch(
                {**batch, "partials": partials, "relays": relays}, reforward=True
            )
        return False

    def _attack_legacy_partials(
        self, entries: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Attack hook for the paper-pure combining path, where partials
        carry no origin accounting: drops and censorship discard the
        shipment outright, inflation corrupts it in place (on a copy —
        the wire value itself is never mutated)."""
        attack = self._attacker.attack
        if attack == "forge_origin" or not entries:
            return entries
        self._record_attack()
        if attack in ("drop_partials", "suppress_sources"):
            return []
        return [
            {
                "key": entry["key"],
                "states": corrupt_states(
                    entry["states"], self._attacker.inflation_factor
                ),
            }
            for entry in entries
        ]

    # -- upcall (intermediate hop) ------------------------------------------- #
    def _on_upcall(self, _namespace: str, _key: object, value: object) -> bool:
        if self._stopped:
            # A purged incarnation's overlay registration outlives the
            # operator (rejoin re-installs a fresh one); consuming here
            # would starve the live incarnation's handler behind it.
            return True
        if not isinstance(value, dict):
            return True
        if "batches" in value:
            if not self._is_root_owner:
                if self._attacker is not None:
                    return self._attack_passing_batches(value["batches"])
                # Origin-accounted batches stay in the routing layer's
                # custody end to end: it reroutes around dead hops with
                # delivery acks, while an intermediate that absorbed the
                # batch could drop a re-delivered copy during convergence.
                return True
            self.partials_intercepted += 1
            for batch in value["batches"]:
                self._fold_batch(batch)
                self._note_partial_keys(
                    item["key"] for item in batch.get("partials", [])
                )
            return False  # terminated at the root: folded, not stored
        if "partials" not in value:
            return True
        self.partials_intercepted += 1
        entries = value["partials"]
        if self._attacker is not None:
            entries = self._attack_legacy_partials(entries)
        for entry in entries:
            self._enqueue_partial(tuple(entry["key"]), entry["states"])
            self._note_partial_keys([entry["key"]])
        return False  # hold; a combined partial will be forwarded later

    # -- ownership monitor ------------------------------------------------------ #
    def _monitor_root(self, _data: object) -> None:
        if self._stopped:
            return
        self.context.overlay.lookup(self.root_identifier, self._on_owner_resolved)
        self.arm_timer(self.monitor_interval, self._monitor_root)

    def _on_owner_resolved(self, owner: Any, _hops: int) -> None:
        if self._stopped or owner is None:
            return
        address = owner.address
        previous = self._root_owner_address
        if previous is None:
            # First resolution: the lookup is authoritative over the local
            # is_responsible() guess (a settled network agrees anyway).
            self._root_owner_address = address
            self._is_root_owner = address == self.context.overlay.address
            return
        if address == previous:
            return
        self._root_owner_address = address
        self._on_ownership_change(address)

    def _on_ownership_change(self, new_owner_address: Any) -> None:
        self.ownership_changes += 1
        was_root = self._is_root_owner
        self._is_root_owner = new_owner_address == self.context.overlay.address
        if was_root and not self._is_root_owner:
            # Rejoin handoff: relay what this node merged as root; origins
            # also re-ship their own cumulative state, and the per-origin
            # dedup at the new root makes the overlap harmless.
            self._relay_folds()
        if not self._is_root_owner:
            self._send_cumulative()
        elif self.window_spec is not None:
            # A node that just became root catches up on every epoch the
            # failed root never emitted: origins re-ship their cumulative
            # contributions, and these timers emit once watermarks pass.
            self._note_ledger_epochs()

    # -- root ------------------------------------------------------------------ #
    def _is_root(self) -> bool:
        return self.context.overlay.router.is_responsible(self.root_identifier)

    def _on_root_arrival(self, _namespace: str, _key: object, value: object) -> None:
        if self._stopped or not isinstance(value, dict):
            return
        if "batches" in value:
            for batch in value["batches"]:
                self._fold_batch(batch)
                self._note_partial_keys(
                    item["key"] for item in batch.get("partials", [])
                )
                if not self._is_root_owner:
                    # Stored here by stale routing: keep a folded copy (in
                    # case ownership lands on this node) and re-forward a
                    # bounded number of times toward the believed root,
                    # stamping this hop into the custody trail.
                    self._pack_batch(
                        {
                            **batch,
                            "relays": list(batch.get("relays", []))
                            + [self.context.overlay.address],
                        },
                        reforward=True,
                    )
            return
        if "partials" not in value:
            return
        for entry in value["partials"]:
            self._merge_into(self._root_states, tuple(entry["key"]), entry["states"])
            self._note_partial_keys([entry["key"]])

    def flush(self) -> None:
        if self.window_spec is not None:
            self._flush_windowed()
            return
        # Any local groups not yet shipped travel now (e.g. snapshot query
        # whose timeout fires before the next window).
        drained = self._drain_groups()
        if drained and not self._is_root_owner:
            if self._monitoring:
                self._pack_batch(self._make_batch(drained, cumulative=False))
            else:
                for key, states in drained.items():
                    self._enqueue_partial(key, states)
        if self._held or self._held_batches:
            self._forward_held(None)
        self._send_integrity_report()
        # The captured/monitored owner emits; with the monitor off, a node
        # that *became* responsible after the captured root failed (routing
        # re-delivered partials here) also emits what it accumulated, so
        # those groups are not silently lost.
        salvage_root = not self._monitoring and not self._is_root_owner and self._is_root()
        if not (self._is_root_owner or salvage_root):
            return
        if self._integrity_active:
            # Verified mode: the root ships per-origin claims to the proxy
            # instead of emitting merged rows.  The proxy checks each claim
            # against the origin's own commitment, repairs what fails, and
            # recomputes the totals itself — so a corrupted fold can change
            # a claim but not the verified result.
            self._send_root_claims()
            return
        final: Dict[PyTuple[Any, ...], List[Any]] = {}
        for key, states in self._root_states.items():
            self._merge_into(final, key, states)
        for origin, entry in self._origin_folds.items():
            if origin == self._origin_id:
                continue  # own contribution is merged from _local_cum below
            for key, states in self._root_fold_states(origin, entry).items():
                self._merge_into(final, key, states)
        if self._is_root_owner:
            # A salvage root already shipped its local data down the delta
            # path (it self-delivered into _root_states); only the true
            # owner contributes _local_cum directly.
            for key, states in self._local_cum.items():
                self._merge_into(final, key, states)
        for key, states in final.items():
            payload = {
                spec.output: function.result(state)
                for spec, function, state in zip(
                    self.aggregate_specs, self._merge_functions, states
                )
            }
            self.emit(self._group_tuple(key, payload))

    # -- integrity (spot-check commitments and proxy-side reconciliation) ------- #
    def _root_fold_states(
        self, origin: str, entry: Dict[str, Any]
    ) -> Dict[PyTuple[Any, ...], List[Any]]:
        """One origin's folded states as *this root reports them*.

        An honest root returns the fold verbatim.  A root-owner attacker
        corrupts the foreign folds it passes on — consistently for the
        final merge and the integrity claims, since both call through here
        — which is the strongest position in the tree: without the
        integrity layer every origin's contribution is in its hands.
        """
        states = self._fold_states(entry)
        if self._attacker is None or origin == self._origin_id or not states:
            return states
        attack = self._attacker.attack
        if attack == "drop_partials":
            self._record_attack(origin=origin)
            return {}
        if attack == "suppress_sources":
            if not suppression_victim(origin):
                return states
            self._record_attack(origin=origin)
            return {}
        if attack == "inflate_partials":
            self._record_attack(origin=origin)
            return {
                key: corrupt_states(st, self._attacker.inflation_factor)
                for key, st in states.items()
            }
        return states

    def _send_integrity_report(self) -> None:
        """Every origin pushes a self-report straight to the proxy: a
        commitment over its cumulative local contribution, plus the full
        states when this (query, replica, origin) falls in the spot-check
        sample.  Direct messaging bypasses the aggregation tree entirely,
        so no attacker on the tree can tamper with the reference."""
        if not self._integrity_active or self._stopped or not self._local_cum:
            return
        payload: Dict[str, Any] = {
            "kind": "origin",
            "replica": self.replica,
            "origin": self._origin_id,
            "node": self.context.overlay.address,
            "inc_ts": self._incarnation_ts,
            "commitment": commit_to_states(self._origin_id, self._local_cum),
        }
        if replica_sampled(
            self.context.query_id, self.replica, self._origin_id, self._spot_sample
        ):
            payload["partials"] = [
                {"key": list(key), "states": states}
                for key, states in self._local_cum.items()
            ]
        self.context.overlay.direct_message(
            self.context.proxy_address,
            INTEGRITY_NAMESPACE,
            self.context.query_id,
            payload,
        )

    def _send_root_claims(self) -> None:
        """The root's side of verified aggregation: per-origin claims (the
        folded states plus the custody trail) instead of merged rows."""
        origins: Dict[str, Dict[str, Any]] = {}
        for origin, entry in self._origin_folds.items():
            if origin == self._origin_id:
                continue
            states = self._root_fold_states(origin, entry)
            origins[origin] = {
                "partials": [
                    {"key": list(key), "states": st} for key, st in states.items()
                ],
                "relays": sorted(entry.get("relays", ()), key=repr),
            }
        # The root's own contribution (and any pre-monitor legacy partials)
        # travels as its self-claim, verified like everyone else's.
        own: Dict[PyTuple[Any, ...], List[Any]] = {}
        for key, states in self._root_states.items():
            self._merge_into(own, key, states)
        for key, states in self._local_cum.items():
            self._merge_into(own, key, states)
        if own:
            origins[self._origin_id] = {
                "partials": [
                    {"key": list(key), "states": st} for key, st in own.items()
                ],
                "relays": [],
            }
        self.context.overlay.direct_message(
            self.context.proxy_address,
            INTEGRITY_NAMESPACE,
            self.context.query_id,
            {
                "kind": "root",
                "replica": self.replica,
                "node": self.context.overlay.address,
                "origins": origins,
            },
        )

    def _flush_windowed(self) -> None:
        """Lifetime expiry for a standing query: the in-progress partial
        pane is dropped by design (only complete windows are reported),
        held traffic is forwarded, and the root emits every complete epoch
        still waiting on its watermark."""
        if self._held or self._held_batches:
            self._forward_held(None)
        salvage_root = (
            not self._monitoring and not self._is_root_owner and self._is_root()
        )
        if not (self._is_root_owner or salvage_root):
            return
        epochs: Set[int] = set()

        def collect(keys: Iterable[Any]) -> None:
            for key in keys:
                if isinstance(key, (list, tuple)) and key and isinstance(key[0], int):
                    epochs.add(key[0])

        collect(self._root_states)
        if self._is_root_owner:
            collect(self._local_cum)
        for origin, entry in self._origin_folds.items():
            if origin == self._origin_id:
                continue
            if entry["base"]:
                collect(entry["base"])
            for partials in entry["deltas"].values():
                collect(partials)
        for epoch in sorted(epochs - self._emitted_epochs):
            self._emit_epoch(epoch)


@register_operator
class HierarchicalJoinExchange(PhysicalOperator):
    """Rehash phase of a parallel hash join with in-path ("early") joins.

    Both join inputs are pushed into this operator (slots 0 and 1).  Each
    tuple is routed toward the DHT bucket for its join key with ``send``;
    every node it passes through caches a copy annotated with the list of
    node identifiers visited so far.  When a passing tuple joins with a
    cached tuple of the other side whose path it has never shared, the
    result is emitted immediately (and shipped by the downstream
    result_handler), off-loading out-bandwidth from the bucket owner.  The
    bucket owner still receives every tuple and performs the complete join,
    skipping pairs whose paths met earlier.

    Params: ``namespace`` (rehash rendezvous), ``left_columns``,
    ``right_columns``, optional ``output_table``, ``lifetime``.
    """

    op_type = "hierarchical_join"

    def __init__(self, spec, context) -> None:  # noqa: ANN001
        super().__init__(spec, context)
        self.namespace = context.scoped_namespace(self.require_param("namespace"))
        self.left_columns: List[str] = list(self.require_param("left_columns"))
        self.right_columns: List[str] = list(self.require_param("right_columns"))
        self.output_table: Optional[str] = self.param("output_table")
        self.lifetime = float(self.param("lifetime", context.lifetime))
        # Cache of tuples seen at this node, per join key and side.
        self._cache: Dict[Any, PyTuple[List[Dict[str, Any]], List[Dict[str, Any]]]] = {}
        # Envelope ids already cached/joined at this node: a tuple can reach
        # the same node more than once (e.g. as an upcall and again as the
        # stored bucket copy) and must be processed exactly once.
        self._processed: Set[str] = set()
        self.early_results = 0
        self.final_results = 0

    def start(self) -> None:
        self.context.overlay.upcall(self.namespace, self._on_upcall)
        self.context.overlay.new_data(self.namespace, self._on_bucket_arrival)
        # Nodes are only loosely synchronised: envelopes rehashed by nodes
        # that started earlier may already be stored here.  Catch up on them
        # (Section 3.3.4, "No Global Synchronization").
        self.context.overlay.local_scan(
            self.namespace, lambda _ns, _key, value: self._on_bucket_arrival(_ns, _key, value)
        )

    # -- local input ---------------------------------------------------------- #
    def on_receive(self, tup: Tuple, slot: int, tag: str) -> None:
        columns = self.left_columns if slot == 0 else self.right_columns
        key = tup.key(columns)
        partition_key = key[0] if len(key) == 1 else key
        envelope = {
            "envelope_id": random_suffix(),
            "side": slot,
            "key": list(key),
            "tuple": tup.to_wire(),
            "path": [self.context.overlay.identifier],
        }
        self._process(envelope, emit_early=True)
        self.context.overlay.send(
            self.namespace,
            key=partition_key,
            suffix=envelope["envelope_id"],
            value=envelope,
            lifetime=self.lifetime,
        )

    # -- in-path interception ---------------------------------------------------- #
    def _on_upcall(self, _namespace: str, _key: object, value: object) -> bool:
        if not isinstance(value, dict) or "side" not in value:
            return True
        # Routed-envelope exception: "path" is per-hop routing state that the
        # envelope accumulates as it travels (like the wrapper's hop count),
        # mutated only by the node that currently owns the message.
        value["path"] = list(value.get("path", [])) + [  # pierlint: disable=P02
            self.context.overlay.identifier
        ]
        self._process(value, emit_early=True)
        return True  # keep routing toward the bucket owner

    def _on_bucket_arrival(self, _namespace: str, _key: object, value: object) -> None:
        if not isinstance(value, dict) or "side" not in value:
            return
        self._process(value, emit_early=False)

    def _process(self, envelope: Dict[str, Any], emit_early: bool) -> None:
        envelope_id = envelope.get("envelope_id")
        if envelope_id in self._processed:
            return
        self._processed.add(envelope_id)
        # Cache a snapshot: the in-flight message keeps accumulating path
        # entries as it travels, but this node saw it with the path as-is.
        snapshot = dict(envelope)
        snapshot["path"] = list(envelope.get("path", []))
        self._join_against_cache(snapshot, emit_early=emit_early)
        self._cache_envelope(snapshot)

    # -- join machinery -------------------------------------------------------------#
    def _cache_envelope(self, envelope: Dict[str, Any]) -> None:
        key = tuple(envelope["key"])
        sides = self._cache.setdefault(key, ([], []))
        sides[envelope["side"]].append(envelope)

    def _join_against_cache(self, envelope: Dict[str, Any], emit_early: bool) -> None:
        key = tuple(envelope["key"])
        sides = self._cache.get(key)
        if sides is None:
            return
        other_side = 1 - envelope["side"]
        own_identifier = self.context.overlay.identifier
        for cached in sides[other_side]:
            met_before = (
                set(cached.get("path", [])) & set(envelope.get("path", []))
            ) - {own_identifier}
            if met_before:
                # The two tuples already met at an earlier node, which
                # produced this result there ("annotated with a matching
                # node identifier"): skip to avoid duplicates.
                continue
            left_env, right_env = (
                (envelope, cached) if envelope["side"] == 0 else (cached, envelope)
            )
            left = Tuple.from_wire(left_env["tuple"])
            right = Tuple.from_wire(right_env["tuple"])
            if emit_early:
                self.early_results += 1
            else:
                self.final_results += 1
            self.emit(left.join(right, table=self.output_table))
