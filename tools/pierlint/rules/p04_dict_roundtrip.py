"""P04: no ``to_dict()``/``from_dict`` round-trips on the hot path.

The zero-copy messaging layer ships ``Tuple`` objects (or their compact
``to_wire`` form) by reference.  Round-tripping a tuple through a plain
dict at a send or receive site silently re-materialises every column name
per message — exactly the overhead the interned-schema work removed — and
the resulting dict no longer shares the interned schema, so downstream
identity fast paths miss.

The rule flags ``<tuple-ish>.to_dict()`` calls (receiver variables whose
terminal name looks like a tuple: ``tup``, ``row``, ``wire``...) and any
``Tuple.from_dict(...)`` call in hot-path modules.  Diagnostic and
client-boundary code can suppress with a justified ``# pierlint:
disable=P04``.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

RULE_ID = "P04"
SUMMARY = "to_dict()/from_dict round-trip on the hot send/receive path"

_TUPLEISH_NAMES = {
    "tup",
    "tuple",
    "tuples",
    "row",
    "rows",
    "result",
    "results",
    "wire",
    "payload",
    "value",
    "values",
    "record",
    "records",
}


def _terminal_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def check(tree: ast.AST, path: str) -> List[Tuple[int, str]]:
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr == "to_dict":
            receiver = _terminal_name(func.value).lower().rstrip("0123456789_")
            if receiver in _TUPLEISH_NAMES:
                violations.append(
                    (
                        node.lineno,
                        "tuple round-tripped through to_dict() on the hot path; ship the "
                        "Tuple (or tup.to_wire()) by reference instead",
                    )
                )
        elif func.attr == "from_dict" and _terminal_name(func.value) == "Tuple":
            violations.append(
                (
                    node.lineno,
                    "Tuple.from_dict(...) re-materialises column names per message; "
                    "receive the Tuple (or Tuple.from_wire) by reference instead",
                )
            )
    violations.sort()
    return violations
