"""P02: received wire payloads and ``Tuple`` internals must not be mutated.

The simulator ships message payloads by reference (zero-copy), so a
receiver that writes into its ``payload`` argument corrupts state shared
with the sender, with other receivers, and with DHT replicas.  The rule
flags stores into (and mutating method calls on) the payload-like
parameters of receiver entry points, plus any assignment to a tuple's
``_values`` backing store anywhere in scope.

Receiver entry points are recognised two ways: by name (``handle_udp``,
``on_receive`` and friends) and by parameters annotated as ``Tuple``.
Mutations of *local* copies are fine — the rule only tracks names bound
as parameters, and a parameter rebound to a fresh object (``payload =
dict(payload)``) is released from tracking.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

RULE_ID = "P02"
SUMMARY = "mutation of received wire payload / Tuple internals"

# Entry points whose non-self parameters arrive by reference off the wire.
_RECEIVER_FUNCTIONS = {
    "handle_udp",
    "on_receive",
    "receive",
    "_on_new_data",
    "_on_upcall",
    "_on_root_arrival",
}

# Parameter annotations that mark a by-reference wire object.
_WIRE_ANNOTATIONS = {"Tuple", "WireTuple"}

_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "sort",
    "reverse",
}


def _annotation_name(annotation: ast.AST) -> str:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value
    return ""


def _wire_params(func: ast.FunctionDef) -> Set[str]:
    """Parameter names of ``func`` that carry wire objects."""
    args = list(func.args.posonlyargs) + list(func.args.args) + list(func.args.kwonlyargs)
    named_receiver = func.name in _RECEIVER_FUNCTIONS
    params = set()
    for arg in args:
        if arg.arg in ("self", "cls") or arg.arg.startswith("_"):
            continue
        if named_receiver or _annotation_name(arg.annotation or ast.Constant(value=None)) in (
            _WIRE_ANNOTATIONS
        ):
            params.add(arg.arg)
    return params


def _root_name(node: ast.AST) -> str:
    """The base identifier of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


class _FunctionChecker(ast.NodeVisitor):
    def __init__(self, params: Set[str]) -> None:
        self.params = set(params)
        self.violations: List[Tuple[int, str]] = []

    def _flag(self, node: ast.AST, name: str, how: str) -> None:
        self.violations.append(
            (
                node.lineno,
                f"wire payload {name!r} {how}; received objects are shared "
                "by reference and must be treated as immutable (copy first)",
            )
        )

    def _check_target(self, target: ast.AST, node: ast.AST, how: str) -> None:
        # Only compound targets mutate the object; a bare Name rebinds the
        # local and releases it from tracking.
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if root in self.params:
                self._flag(node, root, how)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node, "assigned into")
            if isinstance(target, ast.Name) and target.id in self.params:
                self.params.discard(target.id)  # rebound to a fresh object
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node, "assigned into")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node, "augmented-assigned into")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node, "deleted from")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            root = _root_name(func.value)
            if root in self.params:
                self._flag(node, root, f"mutated via .{func.attr}()")
        self.generic_visit(node)

    # Nested defs get their own parameter scopes via the outer walk.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef


def check(tree: ast.AST, path: str) -> List[Tuple[int, str]]:
    violations: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            params = _wire_params(node)
            if params:
                checker = _FunctionChecker(params)
                for statement in node.body:
                    checker.visit(statement)
                violations.extend(checker.violations)
        # Tuple._values is the zero-copy backing store: writing to it on
        # any object is a contract violation regardless of context.
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == "_values":
                    root = _root_name(target)
                    if root != "self":
                        violations.append(
                            (
                                node.lineno,
                                "assignment to Tuple._values outside the Tuple class; "
                                "tuple payloads are immutable once constructed",
                            )
                        )
    violations.sort()
    return violations
