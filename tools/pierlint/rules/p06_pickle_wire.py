"""P06: no pickle on wire paths outside the codec's declared fallback.

The physical runtime's wire format is the binary codec
(``runtime/codec.py``): a tagged, struct-packed encoding driven by each
interned schema's column map.  Pickle survives only as the codec's
*declared* fallback frame for exotic payloads — counted, so tests can pin
the hot wire path to zero fallbacks.

A ``pickle.dumps``/``pickle.loads`` call anywhere else on a wire path
reintroduces exactly what the codec removed: a wire format coupled to
Python class layout (unreadable cross-version, undersized for interned
tuples, and an arbitrary-code-execution hazard on receive).  The rule
flags calls *and* bare references (``partial(pickle.dumps)``, passing the
function as a serializer argument) to ``dumps``/``loads``/``dump``/
``load``, and ``Pickler``/``Unpickler`` construction — via the module
attribute or imported directly from ``pickle``/``cPickle``/``dill`` —
everywhere in scope except ``runtime/codec.py`` itself.  Genuinely
non-wire uses (an on-disk checkpoint) can suppress with a justified
``# pierlint: disable=P06``.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

RULE_ID = "P06"
SUMMARY = "pickle on a wire path outside the codec's declared fallback"

_PICKLE_MODULES = {"pickle", "cPickle", "dill"}
_PICKLE_ATTRS = {"dumps", "loads", "dump", "load", "Pickler", "Unpickler"}


def _message(name: str) -> str:
    return (
        f"pickle.{name} on a wire path; the wire format is runtime/codec.py "
        f"(pickle is only the codec's declared, counted fallback)"
    )


def check(tree: ast.AST, path: str) -> List[Tuple[int, str]]:
    # Track names bound by ``from pickle import dumps [as d]``.
    imported_from_pickle = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in _PICKLE_MODULES:
            for alias in node.names:
                if alias.name in _PICKLE_ATTRS:
                    imported_from_pickle[alias.asname or alias.name] = alias.name

    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            if (
                node.attr in _PICKLE_ATTRS
                and isinstance(node.value, ast.Name)
                and node.value.id in _PICKLE_MODULES
            ):
                violations.append((node.lineno, _message(node.attr)))
        elif isinstance(node, ast.Name) and node.id in imported_from_pickle:
            if isinstance(getattr(node, "ctx", None), ast.Load):
                violations.append(
                    (node.lineno, _message(imported_from_pickle[node.id]))
                )
    violations.sort()
    return violations
