"""P05: operator timers must be armed through the tracked helper, and
``stop()`` overrides must chain to ``super().stop()``.

An operator that arms a timer with raw ``context.schedule`` has no
matching disarm path: at query teardown the event stays live in the Main
Scheduler's heap, fires into a stopped operator, and — under churn-heavy
continuous queries — accumulates into real memory and dispatch overhead.
``PhysicalOperator.arm_timer`` records the event so the base ``stop()``
(and the SimSanitizer's teardown ledger) can disarm and audit it.

Two patterns are flagged inside operator classes:

* ``self.context.schedule(...)`` / ``context.schedule(...)`` calls — use
  ``self.arm_timer(delay, callback, data)`` instead;
* a ``def stop`` override whose body never calls ``super().stop()`` — the
  base method is what disarms the tracked timers.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

RULE_ID = "P05"
SUMMARY = "untracked timer arm (raw context.schedule) or stop() missing super().stop()"


def _is_context_schedule(node: ast.Call) -> bool:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "schedule"):
        return False
    base = func.value
    # self.context.schedule(...)
    if (
        isinstance(base, ast.Attribute)
        and base.attr == "context"
        and isinstance(base.value, ast.Name)
        and base.value.id == "self"
    ):
        return True
    # context.schedule(...)
    return isinstance(base, ast.Name) and base.id == "context"


def _calls_super_stop(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "stop"
        ):
            base = node.func.value
            if isinstance(base, ast.Call) and isinstance(base.func, ast.Name):
                if base.func.id == "super":
                    return True
    return False


def check(tree: ast.AST, path: str) -> List[Tuple[int, str]]:
    violations: List[Tuple[int, str]] = []
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        for node in ast.walk(class_node):
            if isinstance(node, ast.Call) and _is_context_schedule(node):
                violations.append(
                    (
                        node.lineno,
                        "timer armed with raw context.schedule(...); use "
                        "self.arm_timer(delay, callback, data) so stop() can disarm it",
                    )
                )
        for member in class_node.body:
            if isinstance(member, ast.FunctionDef) and member.name == "stop":
                if not _calls_super_stop(member):
                    violations.append(
                        (
                            member.lineno,
                            "stop() override never calls super().stop(); tracked timers "
                            "armed via arm_timer() are only disarmed by the base method",
                        )
                    )
    violations.sort()
    return violations
