"""P03: no ambient randomness or wall-clock reads in simulator-driven code.

Deterministic replay — same seed, same event sequence, byte-identical
results — is the property every regression test and the SimSanitizer's
determinism check rest on.  Module-level ``random.*`` calls share global
interpreter state across tests, and ``time.time()`` / ``datetime.now()``
smuggle the host's wall clock into virtual time.  Simulator-driven code
must derive RNGs via ``repro.runtime.rand.derive_rng`` (or
``SimulationEnvironment.rng``) and read time from the VRI clock
(``get_current_time`` / ``environment.now``).

``random.Random(seed)`` constructed directly is also flagged: routing the
construction through ``derive_rng`` keeps one grep-able choke point for
seed derivation.  Type annotations (``rng: random.Random``) are not calls
and are not flagged.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

RULE_ID = "P03"
SUMMARY = "ambient random.*/wall-clock call in simulator-driven module"

_TIME_CALLS = {
    ("time", "time"): "time.time()",
    ("time", "monotonic"): "time.monotonic()",
    ("time", "perf_counter"): "time.perf_counter()",
    ("datetime", "now"): "datetime.now()",
    ("datetime", "utcnow"): "datetime.utcnow()",
    ("datetime", "today"): "datetime.today()",
}


def check(tree: ast.AST, path: str) -> List[Tuple[int, str]]:
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        base = func.value
        base_name = base.id if isinstance(base, ast.Name) else ""
        if base_name == "random":
            violations.append(
                (
                    node.lineno,
                    f"random.{func.attr}(...) called directly; derive a seeded RNG via "
                    "repro.runtime.rand.derive_rng (or environment.rng()) instead",
                )
            )
        elif (base_name, func.attr) in _TIME_CALLS:
            pretty = _TIME_CALLS[(base_name, func.attr)]
            violations.append(
                (
                    node.lineno,
                    f"{pretty} reads the host wall clock; simulator-driven code must use "
                    "the virtual clock (runtime.get_current_time() / environment.now)",
                )
            )
    violations.sort()
    return violations
