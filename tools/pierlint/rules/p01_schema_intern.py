"""P01: ``Schema(...)`` must not be constructed outside ``Schema.intern``.

Interning is what makes schema identity checks (``tup.schema is other``)
and the per-schema wire-overhead cache correct: two tuples with the same
table and columns must share one ``Schema`` object.  A stray
``Schema(...)`` call creates an un-interned twin that defeats both, and
the bug only shows up as mysteriously-missed cache hits or failed
identity fast paths far from the construction site.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

RULE_ID = "P01"
SUMMARY = "Schema(...) constructed outside Schema.intern"


def _is_schema_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Schema"
    if isinstance(func, ast.Attribute):
        # e.g. tuples.Schema(...); Schema.intern(...) is an Attribute whose
        # attr is "intern", so it never matches here.
        return func.attr == "Schema"
    return False


def check(tree: ast.AST, path: str) -> List[Tuple[int, str]]:
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _is_schema_call(node):
            violations.append(
                (
                    node.lineno,
                    "Schema(...) constructed directly; use Schema.intern(table, columns) "
                    "so equal schemas share one interned instance",
                )
            )
    return violations
