"""pierlint rule modules.

Each rule module exports ``RULE_ID`` (``"P0x"``), ``SUMMARY`` (one line),
and ``check(tree, path) -> List[(line, message)]``.  Rules are pure AST
walks — no imports of the linted code — so they run on any tree, broken
or not.
"""

from __future__ import annotations

from typing import Dict

from tools.pierlint.rules import (
    p01_schema_intern,
    p02_wire_mutation,
    p03_nondeterminism,
    p04_dict_roundtrip,
    p05_timer_leak,
    p06_pickle_wire,
)

RULE_MODULES: Dict[str, object] = {
    module.RULE_ID: module
    for module in (
        p01_schema_intern,
        p02_wire_mutation,
        p03_nondeterminism,
        p04_dict_roundtrip,
        p05_timer_leak,
        p06_pickle_wire,
    )
}
