"""Rule scoping: which rules apply to which files.

Scopes are expressed as path prefixes (or exact paths) relative to the
``repro`` package root, because each rule guards a convention that only
holds in part of the tree:

* P01 applies everywhere except ``qp/tuples.py`` — the one module allowed
  to construct ``Schema`` (inside ``Schema.intern``).
* P02 applies to code that receives wire objects: operators, the proxy,
  the hierarchical aggregation layer, the integrity collector (which
  decodes claim and report payloads), and the overlay.
* P03 applies to every simulator-driven module.  ``runtime/rand.py`` is
  the sanctioned ``random.Random`` construction site, and
  ``runtime/physical.py`` is *defined* by its use of the wall clock.
  ``security/`` is deliberately covered by the catch-all include:
  attacker selection, forge-victim choice, and spot-check sampling must
  go through ``derive_rng`` / deterministic hashing, or byzantine
  experiments would not replay.
* P04 applies to the query-processor and overlay hot path; ``qp/tuples.py``
  itself defines the dict round-trip helpers it guards against.
* P05 applies to operator implementations, which must arm timers through
  the tracked ``PhysicalOperator.arm_timer`` helper.  The helper itself
  lives in ``qp/operators/base.py``, which is therefore exempt.  The
  continuous-query layer (``cq/``) is in scope too: its shared-plan
  fan-out and epoch clocks run timer-driven state machines held to the
  same teardown discipline — as is the observability layer (``obs/``),
  which hooks operator and timer paths and must not arm untracked timers
  of its own.  (P03 already covers ``obs/`` through its catch-all
  include: the tracer takes its clock from the environment and never
  reads a wall clock or constructs a bare ``random.Random``.)
* P06 applies everywhere except ``runtime/codec.py`` — the codec owns the
  wire format, and its counted pickle-fallback frame is the one declared
  pickle site.

Files outside the ``repro`` package (tests, benchmarks, tools) are not
linted by default — conventions like seeded RNG access are free to be
broken by test fixtures on purpose.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# (include prefixes, exclude prefixes); a prefix ending in ".py" matches
# exactly, otherwise it matches any file under that directory.
_Scope = Tuple[List[str], List[str]]

RULE_SCOPES: Dict[str, _Scope] = {
    "P01": ([""], ["qp/tuples.py"]),
    "P02": (
        [
            "qp/operators/",
            "qp/proxy.py",
            "qp/hierarchical.py",
            "qp/integrity.py",
            "overlay/",
        ],
        [],
    ),
    "P03": ([""], ["runtime/rand.py", "runtime/physical.py"]),
    "P04": (["qp/", "overlay/"], ["qp/tuples.py"]),
    "P05": (
        ["qp/operators/", "qp/hierarchical.py", "cq/", "obs/"],
        ["qp/operators/base.py"],
    ),
    "P06": ([""], ["runtime/codec.py"]),
}

ALL_RULE_IDS = sorted(RULE_SCOPES)


def _matches(relative_path: str, prefix: str) -> bool:
    if prefix.endswith(".py"):
        return relative_path == prefix
    return relative_path.startswith(prefix)


def rules_for(relative_path: str) -> List[str]:
    """Rule ids that apply to ``relative_path`` (relative to the ``repro``
    package root, using ``/`` separators)."""
    selected = []
    for rule_id in ALL_RULE_IDS:
        includes, excludes = RULE_SCOPES[rule_id]
        if any(_matches(relative_path, prefix) for prefix in includes) and not any(
            _matches(relative_path, prefix) for prefix in excludes
        ):
            selected.append(rule_id)
    return selected
