"""Entry point for ``python -m tools.pierlint``."""

import sys

from tools.pierlint.runner import main

sys.exit(main())
