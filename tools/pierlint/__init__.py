"""pierlint: project-specific static analysis for the PIER reproduction.

The simulator's zero-copy hot path and deterministic replay rest on
conventions the Python language cannot enforce: tuple schemas must be
interned, wire payloads must never be mutated once sent, simulator-driven
code must draw randomness and time from the seeded environment, and every
timer an operator arms must have a matching disarm path.  pierlint walks
the AST of each source file and flags violations of those conventions
before they become the heisenbugs the SimSanitizer catches at runtime.

Rules (see ``docs/ANALYSIS.md`` for the full catalog and rationale):

====  ==================================================================
P01   ``Schema(...)`` constructed outside ``Schema.intern``
P02   mutation of received wire payloads / ``Tuple`` internals
P03   direct ``random.*`` / wall-clock calls in simulator-driven modules
P04   ``to_dict()``/``from_dict`` round-trips on the hot send/receive path
P05   timers armed via raw ``context.schedule`` (no tracked cancel path),
      or ``stop()`` overrides that skip ``super().stop()``
====  ==================================================================

Suppression: append ``# pierlint: disable=P0x`` to the offending line, or
put ``# pierlint: disable-file=P0x`` on its own line anywhere in the file.
A bare ``disable`` (no rule list) suppresses every rule.

Usage::

    python -m tools.pierlint src/            # lint the shipped tree
    python -m tools.pierlint path/to/file.py # lint specific files
"""

from __future__ import annotations

from tools.pierlint.runner import Violation, lint_file, lint_paths, main

__all__ = ["Violation", "lint_file", "lint_paths", "main"]
