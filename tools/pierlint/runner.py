"""pierlint runner: file discovery, suppression handling, and the CLI.

``lint_paths`` is the product entry point: it discovers ``*.py`` files,
scopes rules per file (see :mod:`tools.pierlint.config`), and applies
suppression comments.  ``lint_file`` lints one file with an explicit rule
list, bypassing scopes — the test fixtures use it to prove each rule
fires.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from tools.pierlint.config import ALL_RULE_IDS, rules_for
from tools.pierlint.rules import RULE_MODULES

_SUPPRESS_RE = re.compile(
    r"#\s*pierlint:\s*(?P<kind>disable(?:-file)?)\s*(?:=\s*(?P<rules>[A-Z0-9,\s]+))?"
)

# Sentinel meaning "every rule" for a bare ``disable`` with no rule list.
_ALL = "*"


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line: rule_id message``."""

    path: str
    line: int
    rule_id: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


def _parse_suppressions(source: str) -> Dict[str, object]:
    """Extract suppression comments from ``source``.

    Returns ``{"file": set_of_rule_ids_or_ALL, "lines": {lineno: set}}``.
    """
    file_level: Set[str] = set()
    line_level: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules_text = match.group("rules")
        rules = (
            {rule.strip() for rule in rules_text.split(",") if rule.strip()}
            if rules_text
            else {_ALL}
        )
        if match.group("kind") == "disable-file":
            file_level |= rules
        else:
            line_level.setdefault(lineno, set()).update(rules)
    return {"file": file_level, "lines": line_level}


def _suppressed(rule_id: str, lineno: int, suppressions: Dict[str, object]) -> bool:
    file_level = suppressions["file"]
    if _ALL in file_level or rule_id in file_level:
        return True
    line_rules = suppressions["lines"].get(lineno, set())
    return _ALL in line_rules or rule_id in line_rules


def lint_file(path: Path, rule_ids: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint one file.  ``rule_ids`` defaults to every rule (scopes are NOT
    applied here — use :func:`lint_paths` for scope-aware linting)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(str(path), exc.lineno or 0, "E999", f"syntax error: {exc.msg}")]
    suppressions = _parse_suppressions(source)
    violations = []
    for rule_id in rule_ids if rule_ids is not None else ALL_RULE_IDS:
        module = RULE_MODULES[rule_id]
        for lineno, message in module.check(tree, str(path)):
            if not _suppressed(rule_id, lineno, suppressions):
                violations.append(Violation(str(path), lineno, rule_id, message))
    violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return violations


def _package_relative(path: Path) -> Optional[str]:
    """Path of ``path`` relative to the ``repro`` package root, or None if
    the file is not inside a ``repro`` package (then no scoped rules apply)."""
    parts = path.resolve().parts
    for index in range(len(parts) - 1, 0, -1):
        if parts[index - 1] == "repro":
            return "/".join(parts[index:])
    return None


def _discover(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: Iterable[Path]) -> List[Violation]:
    """Scope-aware lint of files and directory trees."""
    violations: List[Violation] = []
    for file_path in _discover(paths):
        relative = _package_relative(file_path)
        if relative is None:
            continue
        rule_ids = rules_for(relative)
        if rule_ids:
            violations.extend(lint_file(file_path, rule_ids))
    violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.pierlint",
        description="PIER-specific static analysis (rules P01-P06).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule_id in ALL_RULE_IDS:
            print(f"{rule_id}  {RULE_MODULES[rule_id].SUMMARY}")
        return 0
    violations = lint_paths(Path(p) for p in options.paths)
    for violation in violations:
        print(violation)
    if violations:
        print(f"\npierlint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
