"""Developer tooling for the PIER reproduction (not shipped with the package)."""
