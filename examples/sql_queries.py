"""SQL queries over PIER via the catalog-backed session API.

The deployment catalog is the single source of truth for placement
metadata: declare each table once, and publish / plan / execute all agree.
``network.query`` is the one-call path (parse -> plan -> disseminate ->
execute -> ORDER BY/LIMIT); ``network.explain`` shows the planner's
strategy choices.

Run with:  python examples/sql_queries.py
"""

from repro import PIERNetwork
from repro.qp.tuples import Tuple
from repro.workloads.firewall import FirewallWorkload

NODES = 25


def main() -> None:
    network = PIERNetwork(NODES, seed=13)

    # Per-node firewall logs plus a DHT-published machine inventory table,
    # both declared in the deployment catalog.
    network.create_table("firewall_events", source="local")
    network.create_table("machines", partitioning=["node"])

    workload = FirewallWorkload(NODES, events_per_node=40, seed=13)
    for address, rows in enumerate(workload.events_by_node()):
        network.register_local_table(address, "firewall_events", rows)
    network.publish("machines", [Tuple.make("machines", node=i, site=f"site{i % 5}") for i in range(NODES)])
    network.run(3.0)

    queries = [
        "SELECT source_ip, COUNT(*) AS events FROM firewall_events "
        "GROUP BY source_ip ORDER BY events DESC LIMIT 5 TIMEOUT 14",
        "SELECT source_ip, destination_port FROM firewall_events "
        "WHERE destination_port = 22 TIMEOUT 10",
        "SELECT site FROM machines WHERE node = 7 TIMEOUT 8",
    ]
    for sql in queries:
        result = network.query(sql)
        print(f"\nSQL> {sql}")
        for row in result.rows()[:5]:
            print(f"  {row}")
        print(f"  ({len(result)} rows, {result.messages_sent} messages)")

    # EXPLAIN a join: the catalog knows machines is partitioned on "node",
    # so the planner picks a Fetch-Matches index join over a rehash.
    join_sql = (
        "SELECT source_ip, site FROM firewall_events "
        "JOIN machines ON node = node TIMEOUT 12"
    )
    print(f"\n{network.explain(join_sql)}")


if __name__ == "__main__":
    main()
