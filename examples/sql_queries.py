"""SQL-like queries over PIER via the naive optimizer (Section 4.2).

Run with:  python examples/sql_queries.py
"""

from repro import PIERNetwork
from repro.qp.tuples import Tuple
from repro.sql import NaivePlanner, TableInfo
from repro.sql.planner import apply_result_clauses
from repro.workloads.firewall import FirewallWorkload

NODES = 25


def main() -> None:
    network = PIERNetwork(NODES, seed=13)

    # Per-node firewall logs plus a DHT-published machine inventory table.
    workload = FirewallWorkload(NODES, events_per_node=40, seed=13)
    for address, rows in enumerate(workload.events_by_node()):
        network.register_local_table(address, "firewall_events", rows)
    machines = [Tuple.make("machines", node=i, site=f"site{i % 5}") for i in range(NODES)]
    network.publish("machines", ["node"], machines)
    network.run(3.0)

    # The application supplies the placement metadata PIER has no catalog for.
    planner = NaivePlanner(
        {
            "firewall_events": TableInfo("firewall_events", "local"),
            "machines": TableInfo("machines", "dht", ["node"]),
        }
    )

    queries = [
        "SELECT source_ip, COUNT(*) AS events FROM firewall_events "
        "GROUP BY source_ip ORDER BY events DESC LIMIT 5 TIMEOUT 14",
        "SELECT source_ip, destination_port FROM firewall_events "
        "WHERE destination_port = 22 TIMEOUT 10",
        "SELECT site FROM machines WHERE node = 7 TIMEOUT 8",
    ]
    for sql in queries:
        plan = planner.plan_sql(sql)
        result = network.execute(plan)
        rows = apply_result_clauses(plan.metadata, result.rows())
        print(f"\nSQL> {sql}")
        print(f"  dissemination: {[g.dissemination.strategy for g in plan.opgraphs]}")
        for row in rows[:5]:
            print(f"  {row}")
        print(f"  ({len(result)} rows before ORDER BY/LIMIT)")


if __name__ == "__main__":
    main()
