"""Filesharing keyword search (the Figure 1 application), PIER vs Gnutella.

Publishes a synthetic Zipf filesharing corpus into PIER's inverted index
(declared in the deployment catalog, so keyword searches go through the
one-call SQL path), runs single- and multi-keyword searches, and compares
rare-item behaviour against a Gnutella flooding baseline.

Run with:  python examples/filesharing_search.py
"""

from repro import PIERNetwork
from repro.apps.filesharing import FilesharingSearchApp
from repro.baselines.gnutella import GnutellaNetwork
from repro.runtime.simulation import SimulationEnvironment
from repro.workloads.filesharing import FilesharingWorkload

NODES = 40


def main() -> None:
    workload = FilesharingWorkload(NODES, file_count=200, keyword_count=80, seed=7)
    network = PIERNetwork(NODES, seed=7)
    app = FilesharingSearchApp(network, query_timeout=6.0)
    published = app.publish_workload(workload)
    print(f"published {published} index entries over {NODES} nodes")

    popular = workload.keywords_sorted_by_popularity()[0]
    rare = workload.rare_keywords()[0]
    for label, keyword in (("popular", popular), ("rare", rare)):
        outcome = app.search(keyword, proxy=3)
        print(
            f"PIER search [{label}] '{keyword}': {outcome.result_count} files, "
            f"first result in {outcome.first_result_latency:.3f}s"
        )

    multi = app.search_conjunction(list(workload.files[0].keywords[:2]), proxy=9, timeout=10.0)
    print(f"PIER conjunctive search '{multi.keyword}': files {multi.file_ids}")

    # The app's searches are plain SQL against the catalog; EXPLAIN shows
    # the equality-lookup dissemination the planner chose for a keyword.
    print()
    print(network.explain(f"SELECT filename FROM fs_inverted WHERE keyword = '{popular}'"))

    # Gnutella flooding baseline over an identical corpus and network model.
    environment = SimulationEnvironment(NODES, seed=7)
    gnutella = GnutellaNetwork(environment, degree=4, default_ttl=2, seed=7)
    gnutella.load_replicas(workload.replicas_by_node())
    outcomes = {label: gnutella.query(keyword, origin=0) for label, keyword in
                (("popular", popular), ("rare", rare))}
    environment.run(20.0)
    for label, outcome in outcomes.items():
        status = f"found in {outcome.first_result_latency:.3f}s" if outcome.found else "NOT FOUND"
        print(f"Gnutella flood [{label}] '{outcome.keyword}': {status}")


if __name__ == "__main__":
    main()
