"""Endpoint network monitoring (the Figure 2 application).

Every node holds its own firewall log; the monitoring app now issues its
distributed aggregations through the catalog-backed ``network.query`` API
(the SQL is compiled against the deployment catalog — no hand-built
placement metadata anywhere).

Run with:  python examples/network_monitoring.py
"""

from repro import PIERNetwork
from repro.apps.network_monitor import NetworkMonitorApp
from repro.workloads.firewall import FirewallWorkload

NODES = 40


def main() -> None:
    network = PIERNetwork(NODES, seed=9)
    workload = FirewallWorkload(NODES, events_per_node=80, seed=9)
    app = NetworkMonitorApp(network, query_timeout=16.0)
    total = app.load_workload(workload)
    print(f"loaded {total} firewall events across {NODES} nodes")

    report = app.top_k_sources(k=10, strategy="hierarchical", proxy=0)
    print("\nTop-10 sources of firewall events (hierarchical aggregation):")
    for rank, (source, count) in enumerate(report.top_sources, start=1):
        print(f"  {rank:2d}. {source:<16} {count} events")
    truth = workload.true_top_k(10)
    print(f"\nmatches ground truth: {report.top_sources == truth}")

    ports = app.events_per_port(strategy="flat")
    print("\nEvents per destination port (flat rehash aggregation):")
    for port, count in sorted(ports.items(), key=lambda item: -item[1]):
        print(f"  port {port:<5} {count} events")

    # A live monitoring feed: matching events stream to the client as each
    # node's scan produces them, long before the query timeout.
    stream = network.stream(
        "SELECT source_ip, destination_port FROM firewall_events "
        "WHERE destination_port = 22 TIMEOUT 12"
    )
    first_at = None
    for tup in stream:
        if first_at is None:
            first_at = stream.first_result_latency
    if first_at is None:
        print("\nstreaming monitor: no ssh-probe events observed")
    else:
        print(f"\nstreaming monitor: first ssh-probe event after {first_at:.2f}s, "
              f"{len(stream.results)} events in total")


if __name__ == "__main__":
    main()
