"""Quickstart: bring up a simulated PIER deployment and run SQL queries.

Run with:  python examples/quickstart.py
"""

from repro import PIERNetwork
from repro.qp.tuples import Tuple


def main() -> None:
    # 1. A 30-node PIER deployment under the discrete-event simulator.
    network = PIERNetwork(30, seed=1)

    # 2. Declare a table in the deployment catalog and publish it into the
    #    DHT.  The catalog owns the partitioning metadata: publish() and the
    #    SQL planner both consult it, so they can never disagree.
    network.create_table("inverted", partitioning=["keyword"])
    postings = [
        Tuple.make("inverted", keyword=keyword, file_id=index, filename=f"{keyword}_{index}.mp3")
        for index, keyword in enumerate(["jazz", "rock", "jazz", "ambient", "rock", "jazz"])
    ]
    network.publish("inverted", postings)
    network.run(3.0)

    # 3. The one-call SQL path.  An equality predicate on the partitioning
    #    key compiles to a lookup disseminated to exactly one node.
    result = network.query(
        "SELECT filename FROM inverted WHERE keyword = 'jazz' TIMEOUT 8", proxy=5
    )
    print(f"jazz files: {sorted(row['filename'] for row in result.rows())}")
    print(f"first result after {result.first_result_latency:.3f}s of virtual time")
    print(f"query shipped {result.messages_sent} network messages")

    # 4. Every node also has a local table (e.g. its own log); aggregation
    #    with ORDER BY / LIMIT comes back ready to print.
    for address in range(len(network)):
        network.register_local_table(
            address, "events",
            [Tuple.make("events", level="warn" if address % 3 else "error", node=address)],
        )
    aggregate = network.query(
        "SELECT level, COUNT(*) AS n FROM events GROUP BY level ORDER BY n DESC TIMEOUT 12"
    )
    print("events per level:", {row["level"]: row["n"] for row in aggregate.rows()})

    # 5. EXPLAIN shows what the planner chose without running anything.
    print("\n" + network.explain("SELECT filename FROM inverted WHERE keyword = 'rock'"))

    # 6. Streaming: tuples are delivered as they arrive, so the client sees
    #    first-result latency instead of waiting for the query timeout.
    stream = network.stream("SELECT node FROM events TIMEOUT 10")
    for index, tup in enumerate(stream):
        if index == 0:
            print(f"\nfirst streamed tuple after {stream.first_result_latency:.2f}s "
                  f"(query finished: {stream.finished})")
    print(f"streamed {len(stream.results)} tuples from {len(network)} nodes")


if __name__ == "__main__":
    main()
