"""Quickstart: bring up a simulated PIER deployment and run two queries.

Run with:  python examples/quickstart.py
"""

from repro import PIERNetwork
from repro.qp.plans import broadcast_scan_plan, equality_lookup_plan, flat_aggregation_plan
from repro.qp.tuples import Tuple


def main() -> None:
    # 1. A 30-node PIER deployment under the discrete-event simulator.
    network = PIERNetwork(30, seed=1)

    # 2. Publish a table into the DHT, partitioned on "keyword" (this builds
    #    the table's primary index, so equality lookups touch one node).
    postings = [
        Tuple.make("inverted", keyword=keyword, file_id=index, filename=f"{keyword}_{index}.mp3")
        for index, keyword in enumerate(["jazz", "rock", "jazz", "ambient", "rock", "jazz"])
    ]
    network.publish("inverted", ["keyword"], postings)
    network.run(3.0)

    # 3. Equality lookup: disseminated only to the node owning keyword='jazz'.
    result = network.execute(equality_lookup_plan("inverted", "jazz", timeout=8.0), proxy=5)
    print(f"jazz files: {sorted(row['filename'] for row in result.rows())}")
    print(f"first result after {result.first_result_latency:.3f}s of virtual time")

    # 4. Every node also has a local table (e.g. its own log); a broadcast
    #    query scans all of them, and an aggregation counts rows per group.
    for address in range(len(network)):
        network.register_local_table(
            address, "events",
            [Tuple.make("events", level="warn" if address % 3 else "error", node=address)],
        )
    scan = network.execute(broadcast_scan_plan("events", timeout=10.0))
    print(f"broadcast scan returned {len(scan)} rows from {len(network)} nodes")

    aggregate = network.execute(
        flat_aggregation_plan("events", ["level"], [("count", None, "n")], timeout=12.0)
    )
    print("events per level:", {row["level"]: row["n"] for row in aggregate.rows()})


if __name__ == "__main__":
    main()
